"""Replicated shared objects: the common invocation machinery.

Every algorithm exposes ``invoke(pid, invocation, callback)``; wait-free
algorithms (Figs. 4–5 and the PRAM/LWW baselines) complete the operation
synchronously — the callback runs before ``invoke`` returns, and the
recorded latency is 0 simulated time, which *is* the paper's wait-freedom
claim (operation duration independent of communication delays).  The
sequencer-based SC baseline completes operations asynchronously after a
round trip, so its recorded latency scales with the network delay
(experiment E6).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Optional

from ..core.operations import Invocation
from ..runtime.network import Network
from ..runtime.recorder import HistoryRecorder
from ..runtime.simulator import Simulator

Callback = Callable[[Any], None]


class ReplicatedObject(ABC):
    """One replicated object spanning all ``n`` processes of a run."""

    #: Algorithm identifier used in benchmark tables.
    name: str = "replicated-object"
    #: True when operations return without waiting for other processes.
    wait_free: bool = True
    #: True when a crash-recovered process can rejoin with correct state
    #: (op-based algorithms via broadcast anti-entropy, state-based ones
    #: via their next exchange); the SC sequencer is the counterexample.
    supports_recovery: bool = True

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        recorder: Optional[HistoryRecorder] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.n = network.n
        self.recorder = recorder

    @abstractmethod
    def invoke(
        self, pid: int, invocation: Invocation, callback: Optional[Callback] = None
    ) -> Optional[Any]:
        """Invoke ``invocation`` on process ``pid``'s replica.

        Wait-free implementations return the output (and invoke the
        callback synchronously); blocking implementations return ``None``
        and invoke the callback upon completion.
        """

    # ------------------------------------------------------------------
    def on_crash(self, pid: int) -> None:
        """Crash hook, called when ``network.crash(pid)`` is scheduled.

        Crash-stop kills the process's continuations: algorithms with
        asynchronous completions (the sequencer) drop ``pid``'s in-flight
        operations here, so a reply straggling in after a recovery cannot
        complete — and record — an operation whose caller died.  Wait-free
        algorithms have nothing in flight; the default is a no-op."""

    # ------------------------------------------------------------------
    def on_recover(self, pid: int) -> None:
        """Crash-recovery hook, called after ``network.recover(pid)``.

        The default asks the broadcast layer — when it supports it — to
        anti-entropy the messages ``pid`` missed from a live peer; the
        replica then replays the missed deliveries through its normal
        receive path.  State-based algorithms (gossip) need nothing: the
        next periodic exchange carries the full state.  Algorithms that
        cannot rejoin (``supports_recovery = False``) leave this a no-op
        and simply resume with stale state."""
        service = getattr(self, "broadcast", None)
        start = getattr(service, "start_resync", None)
        if start is not None:
            start(pid)
            return
        resync = getattr(service, "resync", None)
        if resync is not None:
            resync(pid)

    # ------------------------------------------------------------------
    def _complete(
        self,
        pid: int,
        invocation: Invocation,
        output: Any,
        start: float,
        callback: Optional[Callback],
    ) -> Any:
        if self.recorder is not None:
            self.recorder.record(pid, invocation, output, start, self.sim.now)
        if callback is not None:
            callback(output)
        return output
