"""Last-writer-wins eventual-consistency baseline (Vogels [25]).

Updates are timestamped with the writer's *physical* clock (simulated
time plus a fixed per-process skew) and each replica replays its received
updates in timestamp order.  Replicas with the same update set converge
(EC holds at quiescence) but nothing preserves causality:

- deliveries are unordered, so a process can hold an *answer* without its
  *question* (a WCC violation, cf. the forum scenario of Sec. 3.2), and
- skewed clocks can order a causally-later write *before* the write it
  depends on in the converged state.

Together with the CCv algorithm this realises the paper's placement of
causal convergence strictly between EC and SC (Fig. 1); experiment E8/E9
measure the anomaly rates.
"""

from __future__ import annotations

import bisect
from typing import Any, List, Optional, Tuple

from ..core.adt import AbstractDataType
from ..core.operations import Invocation
from ..runtime.broadcast import LazyReliableBroadcast, ReliableBroadcast
from ..runtime.network import Network
from ..runtime.recorder import HistoryRecorder
from ..runtime.simulator import Simulator
from .base import Callback, ReplicatedObject

LogKey = Tuple[float, int, int]  # (physical timestamp, pid, sender sequence)


class LwwReplication(ReplicatedObject):
    """Physically-timestamped log replication (eventually consistent)."""

    wait_free = True

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        recorder: Optional[HistoryRecorder] = None,
        adt: Optional[AbstractDataType] = None,
        clock_skew: float = 0.0,
        flood: bool = True,
        lazy: bool = False,
    ) -> None:
        super().__init__(sim, network, recorder)
        if adt is None:
            raise ValueError("LwwReplication requires an ADT")
        self.adt = adt
        self.name = f"EC({adt.name}) [LWW]"
        self.skews: List[float] = [
            sim.rng.uniform(-clock_skew, clock_skew) for _ in range(self.n)
        ]
        self.logs: List[List[Tuple[LogKey, Invocation]]] = [[] for _ in range(self.n)]
        self._seq: List[int] = [0] * self.n
        # incremental replay (ADT transitions are pure): _cache[pid] is
        # the fold of logs[pid][:_applied[pid]], and _ckpts[pid][m] the
        # fold of the first m*_CKPT entries.  Physical timestamps mean a
        # remote update routinely lands *inside* the applied prefix (it
        # was stamped before the deliveries already folded), so instead
        # of replaying from scratch the fold rewinds to the last
        # checkpoint at or below the insertion point — the replay per
        # read is bounded by the checkpoint stride plus the reorder
        # window, not by the log length
        self._cache: List[Any] = [adt.initial_state() for _ in range(self.n)]
        self._applied: List[int] = [0] * self.n
        self._ckpts: List[List[Any]] = [
            [adt.initial_state()] for _ in range(self.n)
        ]
        # lazy=True swaps in the push/lazy-push transport (PR 8): same
        # reliable-delivery guarantee, ~n·log n messages per broadcast
        # instead of n(n-1), different delivery schedules
        broadcast_cls = LazyReliableBroadcast if lazy else ReliableBroadcast
        self.broadcast = broadcast_cls(network, flood=flood)
        self.endpoints = [
            self.broadcast.endpoint(pid, self._receiver(pid)) for pid in range(self.n)
        ]

    #: checkpoint stride of the incremental replay (log entries)
    _CKPT = 32

    def _receiver(self, pid: int):
        def on_deliver(_origin: int, payload: Tuple[LogKey, Invocation]) -> None:
            log = self.logs[pid]
            i = bisect.bisect_right(log, payload)
            log.insert(i, payload)
            # invariant: len(_ckpts[pid]) == _applied[pid]//_CKPT + 1
            # (checkpoints never extend past the applied prefix), so an
            # insertion at i >= _applied[pid] invalidates nothing
            if i < self._applied[pid]:
                # the entry lands inside the applied prefix: rewind the
                # fold to the last checkpoint not past the insertion
                m = i // self._CKPT
                ckpts = self._ckpts[pid]
                del ckpts[m + 1 :]
                self._applied[pid] = m * self._CKPT
                self._cache[pid] = ckpts[m]

        return on_deliver

    def _state(self, pid: int) -> Any:
        log = self.logs[pid]
        applied = self._applied[pid]
        state = self._cache[pid]
        if applied < len(log):
            stride = self._CKPT
            ckpts = self._ckpts[pid]
            transition = self.adt.transition
            for j in range(applied, len(log)):
                state = transition(state, log[j][1])
                nxt = j + 1
                if nxt % stride == 0 and len(ckpts) == nxt // stride:
                    ckpts.append(state)
            self._cache[pid] = state
            self._applied[pid] = len(log)
        return state

    def invoke(
        self, pid: int, invocation: Invocation, callback: Optional[Callback] = None
    ) -> Optional[Any]:
        start = self.sim.now
        output = self.adt.output(self._state(pid), invocation)
        if self.adt.is_update(invocation):
            stamp = (self.sim.now + self.skews[pid], pid, self._seq[pid])
            self._seq[pid] += 1
            self.endpoints[pid].broadcast((stamp, invocation))
        return self._complete(pid, invocation, output, start, callback)

    def state_of(self, pid: int) -> Any:
        return self._state(pid)
