"""Fig. 5 — causally convergent array of K window streams of size k.

Writes are timestamped with a Lamport clock [14] paired with the writer's
id, giving a total order compatible with causality; every replica keeps,
per stream, the k timestamp-largest writes in timestamp order, so all
replicas converge to the same window once they have received the same
messages (Prop. 7).

Transcription note (documented in DESIGN.md §7 and tested in
``tests/test_algorithms.py::TestPaperLiteralInsertion``): the pseudocode
as printed has an off-by-one — the insertion loop is bounded by
``y < k - 1`` and shifts ``str[x][y] <- str[x][y+1]`` *before* placing the
new value at ``y - 1``.  Taken literally this (a) never inserts anything
for ``k = 1`` and (b) drops the newest surviving value when the incoming
timestamp dominates the whole window (e.g. two sequential writes on an
empty ``W_2`` leave the first write's value nowhere).  The corrected loop
below bounds the scan by ``y < k`` and shifts through ``y - 1``; pass
``paper_literal=True`` to run the printed version (used by the regression
test that demonstrates the misprint).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..core.operations import BOTTOM, Invocation
from ..runtime.broadcast import CausalBroadcast, LazyCausalBroadcast
from ..runtime.network import Network
from ..runtime.recorder import HistoryRecorder
from ..runtime.simulator import Simulator
from .base import Callback, ReplicatedObject

Stamp = Tuple[int, int]  # (lamport time, process id)


class CCvWindowArray(ReplicatedObject):
    """The algorithm of Fig. 5 (corrected insertion; see module docstring)."""

    name = "CCv(W_k^K) [Fig.5]"
    wait_free = True

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        recorder: Optional[HistoryRecorder] = None,
        streams: int = 1,
        k: int = 2,
        default: Any = 0,
        flood: bool = True,
        paper_literal: bool = False,
        lazy: bool = False,
    ) -> None:
        super().__init__(sim, network, recorder)
        self.streams = streams
        self.k = k
        self.paper_literal = paper_literal
        # str_i: per process, per stream, k cells (value, (vt, j)),
        # oldest timestamp first; (0, 0) stamps the initial default values
        self.state: List[List[List[Tuple[Any, Stamp]]]] = [
            [[(default, (0, 0))] * k for _ in range(streams)] for _ in range(self.n)
        ]
        # vtime_i: the Lamport clock of each process
        self.vtime: List[int] = [0] * self.n
        # lazy=True swaps in the push/lazy-push transport (PR 8): the
        # same causal-delivery layer on ~n·log n messages per broadcast
        # instead of n(n-1), with different delivery schedules
        broadcast_cls = LazyCausalBroadcast if lazy else CausalBroadcast
        self.broadcast = broadcast_cls(network, flood=flood)
        self.endpoints = [
            self.broadcast.endpoint(pid, self._receiver(pid)) for pid in range(self.n)
        ]

    # ------------------------------------------------------------------
    def _receiver(self, pid: int):
        def on_deliver(_origin: int, payload: Tuple[int, Any, int, int]) -> None:
            x, value, vt, j = payload
            # line 11: merge the Lamport clock
            self.vtime[pid] = max(self.vtime[pid], vt)
            row = self.state[pid][x]
            stamp = (vt, j)
            if self.paper_literal:
                # lines 12-19 exactly as printed (off-by-one, see module doc)
                y = 0
                while y < self.k - 1 and row[y][1] <= stamp:
                    row[y] = row[y + 1]
                    y += 1
                if y != 0:
                    row[y - 1] = (value, stamp)
            else:
                # corrected insertion: keep the k largest stamps sorted
                y = 0
                while y < self.k and row[y][1] <= stamp:
                    if y >= 1:
                        row[y - 1] = row[y]
                    y += 1
                if y != 0:
                    row[y - 1] = (value, stamp)

        return on_deliver

    # ------------------------------------------------------------------
    def invoke(
        self, pid: int, invocation: Invocation, callback: Optional[Callback] = None
    ) -> Optional[Any]:
        start = self.sim.now
        if invocation.method == "r":
            (x,) = invocation.args
            # line 5: strip the timestamps
            output = tuple(cell[0] for cell in self.state[pid][x])
            return self._complete(pid, invocation, output, start, callback)
        if invocation.method == "w":
            x, value = invocation.args
            # line 8: broadcast with timestamp (vtime+1, i); the local
            # delivery merges the clock, implementing the increment
            self.endpoints[pid].broadcast((x, value, self.vtime[pid] + 1, pid))
            return self._complete(pid, invocation, BOTTOM, start, callback)
        raise ValueError(f"window array has no method {invocation.method!r}")

    # ------------------------------------------------------------------
    def window(self, pid: int, x: int) -> Tuple[Any, ...]:
        """Observability helper: the current window of ``x`` at ``pid``."""
        return tuple(cell[0] for cell in self.state[pid][x])
