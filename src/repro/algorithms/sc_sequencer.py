"""Sequentially consistent baseline over total-order broadcast.

Every operation — including reads — is funnelled through the sequencer
and applied by all replicas in the same global order; the invoking
process answers the operation only when its own message comes back
sequenced.  This yields linearizability (hence SC), but the operation
latency is a full round trip: exactly the communication-delay dependence
that Sec. 1 cites ([3], [16]) as the price of strong consistency, and
which the wait-free algorithms of Figs. 4–5 avoid.  Experiment E6 sweeps
the network delay to expose the contrast; the sequencer is also a single
point of failure, unlike the wait-free algorithms (fault-injection
tests).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.adt import AbstractDataType
from ..core.operations import Invocation
from ..runtime.broadcast import TotalOrderBroadcast
from ..runtime.network import Network
from ..runtime.recorder import HistoryRecorder
from ..runtime.simulator import Simulator
from .base import Callback, ReplicatedObject


class ScSequencer(ReplicatedObject):
    """State-machine replication behind a sequencer (linearizable)."""

    wait_free = False
    # total-order broadcast has no anti-entropy path, and a crashed
    # sequencer takes the whole object down with it
    supports_recovery = False

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        recorder: Optional[HistoryRecorder] = None,
        adt: Optional[AbstractDataType] = None,
        sequencer: int = 0,
    ) -> None:
        super().__init__(sim, network, recorder)
        if adt is None:
            raise ValueError("ScSequencer requires an ADT")
        self.adt = adt
        self.name = f"SC({adt.name}) [sequencer]"
        self.states: List[Any] = [adt.initial_state() for _ in range(self.n)]
        self.broadcast = TotalOrderBroadcast(network, sequencer=sequencer)
        # operations in flight at their origin: (pid, local op id) -> info
        self._inflight: Dict[Tuple[int, int], Tuple[Invocation, float, Optional[Callback]]] = {}
        self._next_op: List[int] = [0] * self.n
        self.endpoints = [
            self.broadcast.endpoint(pid, self._receiver(pid)) for pid in range(self.n)
        ]

    def _receiver(self, pid: int):
        def on_deliver(origin: int, message: Any) -> None:
            op_key: Tuple[int, int] = message["payload"]["op"]
            invocation: Invocation = message["payload"]["invocation"]
            # every replica applies the operation in the same global order;
            # the origin also computes the output and completes the op
            output = self.adt.output(self.states[pid], invocation)
            self.states[pid] = self.adt.transition(self.states[pid], invocation)
            if pid == origin and op_key in self._inflight:
                inv, start, callback = self._inflight.pop(op_key)
                self._complete(pid, inv, output, start, callback)

        return on_deliver

    def on_crash(self, pid: int) -> None:
        """Crash-stop voids ``pid``'s in-flight operations: their
        continuations died with the process (the sequenced updates still
        apply everywhere — a committed-but-unacknowledged write)."""
        for op_key in [key for key in self._inflight if key[0] == pid]:
            del self._inflight[op_key]

    def invoke(
        self, pid: int, invocation: Invocation, callback: Optional[Callback] = None
    ) -> Optional[Any]:
        op_key = (pid, self._next_op[pid])
        self._next_op[pid] += 1
        self._inflight[op_key] = (invocation, self.sim.now, callback)
        self.endpoints[pid].broadcast({"op": op_key, "invocation": invocation})
        return None  # completes asynchronously after the round trip

    def state_of(self, pid: int) -> Any:
        return self.states[pid]
