"""PRAM / pipelined-consistency baseline (Lipton & Sandberg [16]).

Identical to the generic causal construction but over a *FIFO* broadcast:
updates are applied in per-sender order only, so causality across
processes is not preserved — the classic "answer before question"
anomaly becomes observable (a WCC violation witness that the causal
algorithms never produce; experiment E9 measures the rates).
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..core.adt import AbstractDataType
from ..core.operations import Invocation
from ..runtime.broadcast import FifoBroadcast
from ..runtime.network import Network
from ..runtime.recorder import HistoryRecorder
from ..runtime.simulator import Simulator
from .base import Callback, ReplicatedObject


class PramReplication(ReplicatedObject):
    """Op-based replication over FIFO broadcast (pipelined consistency)."""

    wait_free = True

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        recorder: Optional[HistoryRecorder] = None,
        adt: Optional[AbstractDataType] = None,
        flood: bool = True,
    ) -> None:
        super().__init__(sim, network, recorder)
        if adt is None:
            raise ValueError("PramReplication requires an ADT")
        self.adt = adt
        self.name = f"PC({adt.name}) [PRAM]"
        self.states: List[Any] = [adt.initial_state() for _ in range(self.n)]
        self.broadcast = FifoBroadcast(network, flood=flood)
        self.endpoints = [
            self.broadcast.endpoint(pid, self._receiver(pid)) for pid in range(self.n)
        ]

    def _receiver(self, pid: int):
        def on_deliver(_origin: int, invocation: Invocation) -> None:
            self.states[pid] = self.adt.transition(self.states[pid], invocation)

        return on_deliver

    def invoke(
        self, pid: int, invocation: Invocation, callback: Optional[Callback] = None
    ) -> Optional[Any]:
        start = self.sim.now
        output = self.adt.output(self.states[pid], invocation)
        if self.adt.is_update(invocation):
            self.endpoints[pid].broadcast(invocation)
        return self._complete(pid, invocation, output, start, callback)

    def state_of(self, pid: int) -> Any:
        return self.states[pid]
