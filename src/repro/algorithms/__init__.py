"""Replication algorithms: Figs. 4–5 and baselines."""

from .base import ReplicatedObject
from .cc_window import CCWindowArray
from .ccv_window import CCvWindowArray
from .generic_causal import GenericCausal
from .generic_ccv import GenericCCv
from .gossip_ccv import GossipCCvWindowArray, merge_windows
from .lww import LwwReplication
from .pram import PramReplication
from .sc_sequencer import ScSequencer

__all__ = [
    "ReplicatedObject",
    "CCWindowArray",
    "CCvWindowArray",
    "GenericCausal",
    "GenericCCv",
    "GossipCCvWindowArray",
    "merge_windows",
    "LwwReplication",
    "PramReplication",
    "ScSequencer",
]
