"""Generic causally consistent replication for *any* ADT.

The "beyond memory" pay-off of the paper: because causal consistency is
defined against a sequential specification (Def. 9), the construction of
Fig. 4 generalises verbatim — causally broadcast every update and apply
updates in delivery order on a local copy of the transducer state; answer
queries from the local state.

Each process's local apply sequence is then a linearisation of a causal
order (deliveries respect causal broadcast), and every query's value is
explained by the prefix applied locally — the proof of Prop. 6 goes
through unchanged for an arbitrary ADT.  The model-checking tests confirm
CC on queues, counters, sets and edit sequences.

For operations that are update *and* query (e.g. ``pop``), the output is
evaluated on the local state at invocation (its causal past) and the side
effect is propagated; this loose coupling is exactly the behaviour the
paper discusses around Fig. 3f.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..core.adt import AbstractDataType
from ..core.operations import Invocation
from ..runtime.broadcast import CausalBroadcast
from ..runtime.network import Network
from ..runtime.recorder import HistoryRecorder
from ..runtime.simulator import Simulator
from .base import Callback, ReplicatedObject


class GenericCausal(ReplicatedObject):
    """Op-based causal replication of an arbitrary ADT."""

    wait_free = True

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        recorder: Optional[HistoryRecorder] = None,
        adt: Optional[AbstractDataType] = None,
        flood: bool = True,
    ) -> None:
        super().__init__(sim, network, recorder)
        if adt is None:
            raise ValueError("GenericCausal requires an ADT")
        self.adt = adt
        self.name = f"CC({adt.name}) [generic]"
        self.states: List[Any] = [adt.initial_state() for _ in range(self.n)]
        self.applied: List[int] = [0] * self.n
        self.broadcast = CausalBroadcast(network, flood=flood)
        self.endpoints = [
            self.broadcast.endpoint(pid, self._receiver(pid)) for pid in range(self.n)
        ]

    def _receiver(self, pid: int):
        def on_deliver(_origin: int, invocation: Invocation) -> None:
            self.states[pid] = self.adt.transition(self.states[pid], invocation)
            self.applied[pid] += 1

        return on_deliver

    def invoke(
        self, pid: int, invocation: Invocation, callback: Optional[Callback] = None
    ) -> Optional[Any]:
        start = self.sim.now
        # evaluate lambda on the state of the causal past, before the
        # (synchronous, local-first) delivery applies delta
        output = self.adt.output(self.states[pid], invocation)
        if self.adt.is_update(invocation):
            self.endpoints[pid].broadcast(invocation)
        return self._complete(pid, invocation, output, start, callback)

    def state_of(self, pid: int) -> Any:
        return self.states[pid]
