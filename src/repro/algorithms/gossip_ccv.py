"""State-based (gossip / anti-entropy) causal convergence.

The paper cites CRDTs [22] as the state-based route to convergence; this
module is the state-based counterpart of Fig. 5.  Each replica keeps, per
stream, the k timestamp-largest writes (a join-semilattice: the merge of
two windows is the top-k of their union), writes are Lamport-stamped as
in Fig. 5, and replicas periodically push their whole state to a random
peer instead of broadcasting operations.

Because the state is a semilattice and gossip retries forever, the
algorithm converges even over *lossy* links, where the op-based Fig. 5
without flooding loses writes permanently — the trade-off measured in
``benchmarks/bench_gossip.py``.  The price is message size (the whole
window array travels) and the loss of per-operation causality across
streams during a partition of the gossip graph.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..core.operations import BOTTOM, Invocation
from ..runtime.network import Network
from ..runtime.recorder import HistoryRecorder
from ..runtime.simulator import Simulator
from .base import Callback, ReplicatedObject

Stamp = Tuple[int, int]
Cell = Tuple[Any, Stamp]


def merge_windows(a: List[Cell], b: List[Cell], k: int) -> List[Cell]:
    """Join of two windows: the k largest distinct stamps, sorted.

    Stamps are unique per write ((Lamport, pid) with the clock ticking on
    every write), so deduplicating by stamp is exact.
    """
    by_stamp = {cell[1]: cell for cell in a}
    for cell in b:
        by_stamp[cell[1]] = cell
    cells = sorted(by_stamp.values(), key=lambda cell: cell[1])
    return cells[-k:] if len(cells) >= k else cells


class GossipCCvWindowArray(ReplicatedObject):
    """Anti-entropy replication of an array of K window streams."""

    name = "CCv(W_k^K) [gossip]"
    wait_free = True
    # state-based: the first gossip exchange after recovery rejoins the
    # full window state, no explicit resync needed
    supports_recovery = True

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        recorder: Optional[HistoryRecorder] = None,
        streams: int = 1,
        k: int = 2,
        default: Any = 0,
        gossip_interval: float = 1.0,
        fanout: int = 1,
    ) -> None:
        super().__init__(sim, network, recorder)
        self.streams = streams
        self.k = k
        self.gossip_interval = gossip_interval
        self.fanout = max(1, fanout)
        self.state: List[List[List[Cell]]] = [
            [[(default, (0, 0))] * k for _ in range(streams)] for _ in range(self.n)
        ]
        self.vtime: List[int] = [0] * self.n
        self.rounds = 0
        self._running = False
        for pid in range(self.n):
            network.attach(pid, self._receiver(pid))

    # ------------------------------------------------------------------
    # Gossip engine
    # ------------------------------------------------------------------
    def start_gossip(self, rounds: Optional[int] = None) -> None:
        """Schedule periodic anti-entropy; ``rounds=None`` keeps gossiping
        as long as other simulation activity exists (each round schedules
        the next, so callers bound it or use :meth:`stop_gossip`)."""
        self._running = True
        self._budget = rounds
        self.sim.schedule(self.gossip_interval, self._gossip_tick)

    def stop_gossip(self) -> None:
        self._running = False

    def _gossip_tick(self) -> None:
        if not self._running:
            return
        if self._budget is not None:
            if self._budget <= 0:
                self._running = False
                return
            self._budget -= 1
        self.rounds += 1
        for pid in range(self.n):
            if self.network.is_crashed(pid):
                continue
            for _ in range(self.fanout):
                peer = self.sim.rng.randrange(self.n - 1)
                if peer >= pid:
                    peer += 1
                snapshot = [list(stream) for stream in self.state[pid]]
                self.network.send(pid, peer, ("state", self.vtime[pid], snapshot))
        if self._running and (self._budget is None or self._budget > 0):
            self.sim.schedule(self.gossip_interval, self._gossip_tick)

    def _receiver(self, pid: int):
        def on_receive(_src: int, payload: Any) -> None:
            kind, vtime, snapshot = payload
            if kind != "state":
                return
            self.vtime[pid] = max(self.vtime[pid], vtime)
            for x in range(self.streams):
                self.state[pid][x] = merge_windows(
                    self.state[pid][x], snapshot[x], self.k
                )

        return on_receive

    # ------------------------------------------------------------------
    def invoke(
        self, pid: int, invocation: Invocation, callback: Optional[Callback] = None
    ) -> Optional[Any]:
        start = self.sim.now
        if invocation.method == "r":
            (x,) = invocation.args
            output = tuple(cell[0] for cell in self.state[pid][x])
            return self._complete(pid, invocation, output, start, callback)
        if invocation.method == "w":
            x, value = invocation.args
            self.vtime[pid] += 1
            stamp = (self.vtime[pid], pid)
            self.state[pid][x] = merge_windows(
                self.state[pid][x], [(value, stamp)], self.k
            )
            return self._complete(pid, invocation, BOTTOM, start, callback)
        raise ValueError(f"window array has no method {invocation.method!r}")

    def window(self, pid: int, x: int) -> Tuple[Any, ...]:
        return tuple(cell[0] for cell in self.state[pid][x])

    def converged(self) -> bool:
        """True when all live replicas expose identical windows."""
        live = [pid for pid in range(self.n) if not self.network.is_crashed(pid)]
        reference = [self.window(live[0], x) for x in range(self.streams)]
        return all(
            [self.window(pid, x) for x in range(self.streams)] == reference
            for pid in live[1:]
        )
