"""Operations and invocations — the alphabet of abstract data types.

The paper (Def. 1) models an ADT as a transducer with an input alphabet
``Sigma_i`` (method invocations) and an output alphabet ``Sigma_o`` (returned
values).  An *operation* is a pair ``sigma_i / sigma_o``; a *hidden*
operation is an input symbol whose return value is unknown (Def. 2), used by
the projection operator ``H.pi(E', E'')`` of Sec. 2.2 to keep the side
effect of an event while ignoring what it returned.

This module defines the two value types shared by the whole library:

``Invocation``
    An element of ``Sigma_i``: a method name plus its arguments, e.g.
    ``Invocation("w", (1,))`` for the window-stream write ``w(1)``.

``Operation``
    An element of ``(Sigma_i x Sigma_o) U Sigma_i``: an invocation together
    with its output, where the output may be the :data:`HIDDEN` sentinel to
    represent a hidden operation ``sigma_i``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Tuple


class _Hidden:
    """Sentinel for the unknown output of a hidden operation (Def. 2)."""

    _instance = None

    def __new__(cls) -> "_Hidden":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "HIDDEN"

    def __reduce__(self):  # keep singleton across pickling
        return (_Hidden, ())


#: Output placeholder of a hidden operation: the method call is known but the
#: value it returned is not part of the specification check.
HIDDEN = _Hidden()


class _Bottom:
    """Sentinel for the dummy output ``bot`` returned by pure updates."""

    _instance = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "⊥"

    def __reduce__(self):
        return (_Bottom, ())


#: The dummy return value of pure update operations (``w(v)/bot`` in the
#: paper).  Comparable only to itself.
BOTTOM = _Bottom()


@dataclass(frozen=True)
class Invocation:
    """An input symbol ``sigma_i``: a method name applied to arguments.

    Arguments are stored as a (hashable) tuple so invocations can be used as
    dictionary keys and in memoisation tables.
    """

    method: str
    args: Tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))

    def __repr__(self) -> str:
        if not self.args:
            return self.method
        inner = ",".join(repr(a) for a in self.args)
        return f"{self.method}({inner})"


@dataclass(frozen=True)
class Operation:
    """An operation ``sigma_i/sigma_o`` or a hidden operation ``sigma_i``.

    ``output`` is :data:`HIDDEN` when the return value is not specified —
    the operation then only contributes its side effect to a sequential
    history (Def. 2).
    """

    invocation: Invocation
    output: Any = HIDDEN

    @property
    def hidden(self) -> bool:
        """True when this is a hidden operation (no output to check)."""
        return self.output is HIDDEN

    def hide(self) -> "Operation":
        """Return the hidden version ``sigma_i`` of this operation."""
        if self.hidden:
            return self
        return Operation(self.invocation, HIDDEN)

    def __repr__(self) -> str:
        if self.hidden:
            return repr(self.invocation)
        return f"{self.invocation!r}/{self.output!r}"


def inv(method: str, *args: Any) -> Invocation:
    """Shorthand constructor: ``inv("w", 1) == Invocation("w", (1,))``."""
    return Invocation(method, tuple(args))


def op(method: str, *args: Any, returns: Any = HIDDEN) -> Operation:
    """Shorthand constructor for an :class:`Operation`.

    >>> op("w", 1)                    # hidden write
    w(1)
    >>> op("r", returns=(0, 1))       # read returning (0, 1)
    r/(0, 1)
    """
    return Operation(Invocation(method, tuple(args)), returns)


def operations(seq: Iterable[Any]) -> list:
    """Normalise a mixed iterable into a list of :class:`Operation`.

    Accepts :class:`Operation`, :class:`Invocation` (treated as hidden) and
    ``(invocation, output)`` pairs.
    """
    out = []
    for item in seq:
        if isinstance(item, Operation):
            out.append(item)
        elif isinstance(item, Invocation):
            out.append(Operation(item, HIDDEN))
        elif isinstance(item, tuple) and len(item) == 2 and isinstance(item[0], Invocation):
            out.append(Operation(item[0], item[1]))
        else:
            raise TypeError(f"cannot interpret {item!r} as an operation")
    return out
