"""Sequential specification membership — replaying words on a transducer.

The sequential specification ``L(T)`` (Def. 2) is the set of finite or
infinite sequences of (possibly hidden) operations that label a path of the
transducer from ``q0``.  Because ``delta`` and ``lambda`` are total, a
finite word ``u`` belongs to ``L(T)`` iff replaying it from ``q0`` matches
every *visible* output; hidden operations only apply their side effect.

This module is the single place where words are checked, so every criterion
checker agrees on what "conforms to the sequential specification" means.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple

from .adt import AbstractDataType, State
from .operations import HIDDEN, Operation


def replay(
    adt: AbstractDataType,
    word: Iterable[Operation],
    state: Optional[State] = None,
) -> Tuple[bool, State]:
    """Replay ``word`` from ``state`` (default ``q0``).

    Returns ``(accepted, final_state)``.  ``accepted`` is False as soon as a
    non-hidden operation's recorded output differs from ``lambda`` at that
    point; the returned state is then the state reached *before* the
    offending operation.
    """
    if state is None:
        state = adt.initial_state()
    for operation in word:
        invocation = operation.invocation
        if operation.output is not HIDDEN:
            produced = adt.output(state, invocation)
            if produced != operation.output:
                return False, state
        state = adt.transition(state, invocation)
    return True, state


def accepts(adt: AbstractDataType, word: Iterable[Operation]) -> bool:
    """``word in L(T)`` for a finite word (Def. 2)."""
    ok, _ = replay(adt, word)
    return ok


def first_violation(
    adt: AbstractDataType, word: Sequence[Operation]
) -> Optional[int]:
    """Index of the first operation whose output contradicts ``L(T)``.

    Returns ``None`` when the word is admissible.  Useful for error
    messages and for the prefix-closure property used by Prop. 2.
    """
    state = adt.initial_state()
    for index, operation in enumerate(word):
        if operation.output is not HIDDEN:
            if adt.output(state, operation.invocation) != operation.output:
                return index
        state = adt.transition(state, operation.invocation)
    return None


def outputs_of(adt: AbstractDataType, word: Sequence[Operation]) -> List[Any]:
    """The outputs ``lambda`` would produce along ``word`` (ignoring the
    recorded ones).  Handy to *construct* admissible sequential histories."""
    state = adt.initial_state()
    produced = []
    for operation in word:
        produced.append(adt.output(state, operation.invocation))
        state = adt.transition(state, operation.invocation)
    return produced


def seal(adt: AbstractDataType, word: Sequence[Operation]) -> List[Operation]:
    """Replace every visible output in ``word`` by the specification's own
    output, yielding a word guaranteed to be in ``L(T)``.

    Hidden operations stay hidden.  This implements the textbook way of
    producing members of ``L(T)`` for tests and generators.
    """
    state = adt.initial_state()
    sealed = []
    for operation in word:
        if operation.output is HIDDEN:
            sealed.append(operation)
        else:
            sealed.append(Operation(operation.invocation, adt.output(state, operation.invocation)))
        state = adt.transition(state, operation.invocation)
    return sealed


def state_after(adt: AbstractDataType, word: Iterable[Operation]) -> State:
    """State reached after applying the side effects of ``word`` (outputs
    are not checked)."""
    state = adt.initial_state()
    for operation in word:
        state = adt.transition(state, operation.invocation)
    return state
