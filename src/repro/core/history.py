"""Distributed histories (Def. 4).

A history is ``H = (Sigma, E, Lambda, |->)``: a countable set of events,
each labelled by an operation, partially ordered by the *program order*
``|->`` in which every event has a finite past.  Processes are the maximal
chains of the order (Sec. 2.2); the common case of communicating sequential
processes yields a collection of disjoint chains, but the model — and this
class — supports arbitrary partial orders (fork/join programs etc.).

Implementation notes
--------------------
Events are densely numbered ``0..n-1`` and all order information is kept as
Python-int bitmasks (arbitrary precision, so histories are not limited to
64 events).  Checkers rely on:

- :meth:`History.past_mask` — strict program-order past of an event;
- :meth:`History.processes` — the maximal chains ``P_H``;
- :meth:`History.update_mask` — the update events of a given ADT.

Histories recorded from simulated executions additionally carry the
*observed invocation timestamps* of their events (``times``): the time
each operation was issued — for an update, the moment its broadcast was
sent.  Timestamps are pure observation metadata: they never participate
in equality of verdicts, but the CCv checker's witness-guided
enumeration uses them to decide which total update orders to *try
first* (see :mod:`repro.criteria.causal_search`).  Histories built
without them (litmus galleries, JSON files) simply have ``times is
None`` and the checkers fall back to structural virtual timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .adt import AbstractDataType
from .operations import HIDDEN, Invocation, Operation, operations


@dataclass(frozen=True)
class Event:
    """A labelled event of a distributed history.

    ``process`` is a convenience tag (the index of the chain the event was
    declared on) and may be ``None`` for events of a general DAG history;
    the authoritative notion of "process" is a maximal chain of the program
    order, per the paper.
    """

    eid: int
    process: Optional[int]
    invocation: Invocation
    output: Any = HIDDEN

    @property
    def operation(self) -> Operation:
        return Operation(self.invocation, self.output)

    @property
    def hidden(self) -> bool:
        return self.output is HIDDEN

    def __repr__(self) -> str:
        tag = f"p{self.process}" if self.process is not None else "e"
        return f"<{tag}#{self.eid} {self.operation!r}>"


def _transitive_reduction(n: int, pred_masks: List[int]) -> List[int]:
    """Immediate-predecessor masks from full strict-past masks."""
    ipred = []
    for e in range(n):
        mask = pred_masks[e]
        imm = 0
        rest = mask
        while rest:
            low = rest & -rest
            p = low.bit_length() - 1
            rest ^= low
            # p is immediate iff no other predecessor q has p in its past
            others = mask & ~low
            dominated = False
            sweep = others
            while sweep:
                qlow = sweep & -sweep
                q = qlow.bit_length() - 1
                sweep ^= qlow
                if pred_masks[q] & low:
                    dominated = True
                    break
            if not dominated:
                imm |= low
        ipred.append(imm)
    return ipred


class History:
    """A finite distributed history with cached order structure."""

    __slots__ = (
        "events",
        "_ipred_masks",
        "_past_masks",
        "_succ_masks",
        "_chains",
        "_times",
    )

    def __init__(
        self,
        events: Sequence[Event],
        past_masks: Sequence[int],
        times: Optional[Sequence[float]] = None,
    ):
        self.events: Tuple[Event, ...] = tuple(events)
        self._past_masks: Tuple[int, ...] = tuple(past_masks)
        self._ipred_masks: Optional[Tuple[int, ...]] = None
        self._succ_masks: Optional[Tuple[int, ...]] = None
        self._chains: Optional[Tuple[Tuple[int, ...], ...]] = None
        self._times: Optional[Tuple[float, ...]] = (
            tuple(times) if times is not None else None
        )
        if len(self._past_masks) != len(self.events):
            raise ValueError("one past mask per event required")
        if self._times is not None and len(self._times) != len(self.events):
            raise ValueError("one timestamp per event required")
        for e, mask in enumerate(self._past_masks):
            if mask >> len(self.events):
                raise ValueError(f"past mask of event {e} mentions unknown events")
            if mask & (1 << e):
                raise ValueError(f"event {e} cannot precede itself")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_processes(
        cls,
        rows: Sequence[Sequence[Any]],
        times: Optional[Sequence[Sequence[float]]] = None,
    ) -> "History":
        """Build a history of communicating sequential processes.

        ``rows[p]`` is the sequence of operations of process ``p`` (any
        format accepted by :func:`repro.core.operations.operations`).  The
        program order is the disjoint union of the row orders.  ``times``
        optionally gives the observed invocation timestamp of every
        operation, row-parallel to ``rows``.
        """
        events: List[Event] = []
        past_masks: List[int] = []
        flat_times: Optional[List[float]] = [] if times is not None else None
        chains: List[Tuple[int, ...]] = []
        for p, row in enumerate(rows):
            row_ops = operations(row)
            if flat_times is not None:
                row_times = times[p]
                if len(row_times) != len(row_ops):
                    raise ValueError(
                        f"row {p}: {len(row_times)} timestamps for "
                        f"{len(row_ops)} operations"
                    )
                flat_times.extend(row_times)
            prefix_mask = 0
            start = len(events)
            for operation in row_ops:
                eid = len(events)
                events.append(Event(eid, p, operation.invocation, operation.output))
                past_masks.append(prefix_mask)
                prefix_mask |= 1 << eid
            if row_ops:
                chains.append(tuple(range(start, len(events))))
        history = cls(events, past_masks, times=flat_times)
        # The declared rows ARE the maximal chains of a disjoint union of
        # row orders; seeding them skips the general-DAG enumeration.
        history._chains = tuple(chains)
        return history

    @classmethod
    def from_dag(
        cls,
        ops: Sequence[Any],
        edges: Iterable[Tuple[int, int]],
        processes: Optional[Sequence[int]] = None,
    ) -> "History":
        """Build a history over an arbitrary program order.

        ``edges`` are pairs ``(a, b)`` meaning ``a |-> b`` (need not be
        transitively closed or reduced).  ``processes`` optionally tags each
        event with a process id for display purposes.
        """
        row_ops = operations(ops)
        n = len(row_ops)
        adj: List[int] = [0] * n
        for a, b in edges:
            if not (0 <= a < n and 0 <= b < n):
                raise ValueError(f"edge ({a},{b}) out of range")
            adj[b] |= 1 << a
        # transitive closure by repeated propagation in topological order
        past = list(adj)
        order = _topological_order(n, past)
        if order is None:
            raise ValueError("program order contains a cycle")
        for e in order:
            mask = past[e]
            rest = mask
            while rest:
                low = rest & -rest
                rest ^= low
                mask |= past[low.bit_length() - 1]
            past[e] = mask
        tags = list(processes) if processes is not None else [None] * n
        events = [
            Event(eid, tags[eid], operation.invocation, operation.output)
            for eid, operation in enumerate(row_ops)
        ]
        return cls(events, past)

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def event(self, eid: int) -> Event:
        return self.events[eid]

    def past_mask(self, eid: int) -> int:
        """Strict program-order past ``{e' : e' |-> e}`` as a bitmask."""
        return self._past_masks[eid]

    @property
    def times(self) -> Optional[Tuple[float, ...]]:
        """Observed invocation timestamps by event id, or ``None`` for
        histories that were not recorded from an execution."""
        return self._times

    def time_of(self, eid: int) -> Optional[float]:
        """Observed invocation timestamp of ``eid`` (``None`` untimed)."""
        return self._times[eid] if self._times is not None else None

    def po_lt(self, a: int, b: int) -> bool:
        """``a |-> b`` (strictly)."""
        return bool(self._past_masks[b] & (1 << a))

    def concurrent(self, a: int, b: int) -> bool:
        return a != b and not self.po_lt(a, b) and not self.po_lt(b, a)

    def ipred_mask(self, eid: int) -> int:
        """Immediate predecessors (Hasse diagram) of ``eid``."""
        if self._ipred_masks is None:
            self._ipred_masks = tuple(
                _transitive_reduction(len(self), list(self._past_masks))
            )
        return self._ipred_masks[eid]

    def succ_mask(self, eid: int) -> int:
        """Strict program-order future of ``eid``."""
        if self._succ_masks is None:
            succ = [0] * len(self)
            for e in range(len(self)):
                mask = self._past_masks[e]
                while mask:
                    low = mask & -mask
                    mask ^= low
                    succ[low.bit_length() - 1] |= 1 << e
            self._succ_masks = tuple(succ)
        return self._succ_masks[eid]

    # ------------------------------------------------------------------
    # Processes = maximal chains (Sec. 2.2)
    # ------------------------------------------------------------------
    def processes(self, max_chains: int = 4096) -> Tuple[Tuple[int, ...], ...]:
        """The maximal chains ``P_H`` of the program order.

        For a history built with :meth:`from_processes` these are exactly
        the declared rows.  For general DAGs they are enumerated from the
        Hasse diagram (paths from a minimal to a maximal event); the count
        is capped to guard against pathological inputs.
        """
        if self._chains is None:
            n = len(self)
            chains: List[Tuple[int, ...]] = []
            minimal = [e for e in range(n) if not self._past_masks[e]]
            isucc: List[List[int]] = [[] for _ in range(n)]
            for e in range(n):
                mask = self.ipred_mask(e)
                while mask:
                    low = mask & -mask
                    mask ^= low
                    isucc[low.bit_length() - 1].append(e)

            # iterative DFS — chains can be as long as the history, far
            # past the interpreter recursion limit
            for start in minimal:
                path = [start]
                branch: List[int] = [0]  # next successor index per depth
                while path:
                    if len(chains) >= max_chains:
                        raise RuntimeError(
                            f"history has more than {max_chains} "
                            "maximal chains"
                        )
                    succs = isucc[path[-1]]
                    if not succs:
                        chains.append(tuple(path))
                        path.pop()
                        branch.pop()
                        continue
                    nxt = branch[-1]
                    if nxt < len(succs):
                        branch[-1] += 1
                        path.append(succs[nxt])
                        branch.append(0)
                    else:
                        path.pop()
                        branch.pop()
            if not minimal and n:
                raise RuntimeError("non-empty order with no minimal element")
            self._chains = tuple(chains)
        return self._chains

    def process_of(self, eid: int) -> Tuple[int, ...]:
        """Some maximal chain containing ``eid`` (the declared row when the
        history came from :meth:`from_processes`)."""
        for chain in self.processes():
            if eid in chain:
                return chain
        raise KeyError(eid)

    # ------------------------------------------------------------------
    # ADT-aware helpers
    # ------------------------------------------------------------------
    def update_mask(self, adt: AbstractDataType) -> int:
        """Bitmask of events labelled by update operations of ``adt``."""
        mask = 0
        for event in self.events:
            if adt.is_update(event.invocation):
                mask |= 1 << event.eid
        return mask

    def eids(self, mask: int) -> List[int]:
        """Decode a bitmask into a sorted list of event ids."""
        out = []
        while mask:
            low = mask & -mask
            mask ^= low
            out.append(low.bit_length() - 1)
        return out

    def label(self, eid: int) -> Operation:
        return self.events[eid].operation

    def __repr__(self) -> str:
        rows: Dict[Optional[int], List[str]] = {}
        for event in self.events:
            rows.setdefault(event.process, []).append(repr(event.operation))
        body = "; ".join(
            f"p{p}: " + " ".join(ops) for p, ops in sorted(rows.items(), key=lambda kv: (kv[0] is None, kv[0]))
        )
        return f"<History |E|={len(self)} {body}>"


def _topological_order(n: int, pred: List[int]) -> Optional[List[int]]:
    """Topological order of events given direct-predecessor masks, or None
    if cyclic."""
    indeg = [bin(pred[e]).count("1") for e in range(n)]
    stack = [e for e in range(n) if indeg[e] == 0]
    succ: List[List[int]] = [[] for _ in range(n)]
    for e in range(n):
        mask = pred[e]
        while mask:
            low = mask & -mask
            mask ^= low
            succ[low.bit_length() - 1].append(e)
    order = []
    while stack:
        e = stack.pop()
        order.append(e)
        for s in succ[e]:
            indeg[s] -= 1
            if indeg[s] == 0:
                stack.append(s)
    if len(order) != n:
        return None
    return order
