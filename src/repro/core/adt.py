"""Abstract data types as transducers (Def. 1 of the paper).

An ADT is a 6-tuple ``T = (Sigma_i, Sigma_o, Q, q0, delta, lambda)``:

- ``Sigma_i`` / ``Sigma_o``: countable input/output alphabets;
- ``Q`` a countable set of states with initial state ``q0``;
- ``delta : Q x Sigma_i -> Q`` the (total) transition function;
- ``lambda : Q x Sigma_i -> Sigma_o`` the (total) output function.

States must be hashable and treated as immutable: every checker in
:mod:`repro.criteria` memoises on ``(set-of-consumed-events, state)`` pairs,
and the replication algorithms in :mod:`repro.algorithms` replay prefixes of
update sequences.

Updates vs queries (Sec. 2.1): an input symbol is an *update* when its
transition is not always a loop, and a *query* when its output depends on
the state.  These are semantic properties of the (possibly infinite)
transducer, so concrete ADTs declare them via :meth:`AbstractDataType.is_update`
and :meth:`AbstractDataType.is_query`; :func:`classify_by_search` offers a
best-effort empirical classification used by the test-suite to cross-check
the declarations.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Any, Hashable, Iterable, Optional, Sequence, Tuple

from .operations import BOTTOM, HIDDEN, Invocation, Operation

State = Hashable


class AbstractDataType(ABC):
    """A sequential abstract data type ``T`` (Def. 1).

    Subclasses implement the transducer (``initial_state``, ``transition``,
    ``output``) and the update/query classification.  All other behaviour —
    sequential specification membership, replay, linearisation search — is
    derived in :mod:`repro.core.replay` and :mod:`repro.criteria`.
    """

    #: Human-readable type name, e.g. ``"W_2"`` or ``"Memory[a-z]"``.
    name: str = "ADT"

    # ------------------------------------------------------------------
    # The transducer
    # ------------------------------------------------------------------
    @abstractmethod
    def initial_state(self) -> State:
        """Return the initial abstract state ``q0``."""

    @abstractmethod
    def transition(self, state: State, invocation: Invocation) -> State:
        """The transition function ``delta`` (total: must accept any state
        and any invocation of the type's alphabet)."""

    @abstractmethod
    def output(self, state: State, invocation: Invocation) -> Any:
        """The output function ``lambda`` (total)."""

    # ------------------------------------------------------------------
    # Update / query classification (Sec. 2.1)
    # ------------------------------------------------------------------
    @abstractmethod
    def is_update(self, invocation: Invocation) -> bool:
        """True when ``delta(q, invocation) != q`` for some state ``q``."""

    @abstractmethod
    def is_query(self, invocation: Invocation) -> bool:
        """True when ``lambda`` depends on the state for this invocation."""

    def is_pure_update(self, invocation: Invocation) -> bool:
        """An update that is not a query (its output is constant)."""
        return self.is_update(invocation) and not self.is_query(invocation)

    def is_pure_query(self, invocation: Invocation) -> bool:
        """A query that is not an update (no side effect)."""
        return self.is_query(invocation) and not self.is_update(invocation)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def apply(self, state: State, invocation: Invocation) -> Tuple[State, Any]:
        """Apply ``invocation`` to ``state``: returns ``(delta, lambda)``."""
        return self.transition(state, invocation), self.output(state, invocation)

    def run(self, invocations: Iterable[Invocation]) -> Tuple[State, list]:
        """Run a sequence of invocations from ``q0``.

        Returns the final state and the list of outputs, i.e. the unique
        sequential execution of the program (useful in examples and tests).
        """
        state = self.initial_state()
        outputs = []
        for invocation in invocations:
            state, out = self.apply(state, invocation)
            outputs.append(out)
        return state, outputs

    def operation(self, invocation: Invocation) -> Operation:
        """Run ``invocation`` on ``q0`` and wrap it with its output."""
        return Operation(invocation, self.output(self.initial_state(), invocation))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ADT {self.name}>"


def classify_by_search(
    adt: AbstractDataType,
    invocation: Invocation,
    probe_sequences: Sequence[Sequence[Invocation]],
) -> Tuple[Optional[bool], Optional[bool]]:
    """Empirically classify ``invocation`` as (update?, query?).

    Explores the states reached by each probe sequence and observes whether
    ``delta`` moves any of them and whether ``lambda`` differs between any
    two of them.  Returns ``(update, query)`` where a component is ``True``
    when witnessed, and ``None`` when no witness was found (the property may
    still hold on unexplored states — this helper is only used to
    cross-check declared classifications in tests, never by the checkers).
    """
    states = {adt.initial_state()}
    for seq in probe_sequences:
        state = adt.initial_state()
        states.add(state)
        for step in seq:
            state = adt.transition(state, step)
            states.add(state)
    update_witness: Optional[bool] = None
    query_witness: Optional[bool] = None
    outputs = set()
    for state in states:
        if adt.transition(state, invocation) != state:
            update_witness = True
        try:
            outputs.add(adt.output(state, invocation))
        except TypeError:  # unhashable output: compare pairwise
            outs = [adt.output(s, invocation) for s in states]
            if any(a != b for a, b in itertools.combinations(outs, 2)):
                query_witness = True
            outs = None
    if len(outputs) > 1:
        query_witness = True
    return update_witness, query_witness


class InstrumentedADT(AbstractDataType):
    """Wrap an ADT and count transducer evaluations.

    Used by the benchmark harness to report how much state-space the
    checkers explore, independently of wall-clock noise.
    """

    def __init__(self, inner: AbstractDataType) -> None:
        self.inner = inner
        self.name = f"instrumented({inner.name})"
        self.transitions = 0
        self.outputs = 0

    def initial_state(self) -> State:
        return self.inner.initial_state()

    def transition(self, state: State, invocation: Invocation) -> State:
        self.transitions += 1
        return self.inner.transition(state, invocation)

    def output(self, state: State, invocation: Invocation) -> Any:
        self.outputs += 1
        return self.inner.output(state, invocation)

    def is_update(self, invocation: Invocation) -> bool:
        return self.inner.is_update(invocation)

    def is_query(self, invocation: Invocation) -> bool:
        return self.inner.is_query(invocation)

    def reset_counters(self) -> None:
        self.transitions = 0
        self.outputs = 0
