"""Core formalism: ADTs as transducers, operations, histories, replay."""

from .adt import AbstractDataType, InstrumentedADT, classify_by_search
from .history import Event, History
from .operations import BOTTOM, HIDDEN, Invocation, Operation, inv, op, operations
from .replay import accepts, first_violation, outputs_of, replay, seal, state_after

__all__ = [
    "AbstractDataType",
    "InstrumentedADT",
    "classify_by_search",
    "Event",
    "History",
    "BOTTOM",
    "HIDDEN",
    "Invocation",
    "Operation",
    "inv",
    "op",
    "operations",
    "accepts",
    "first_violation",
    "outputs_of",
    "replay",
    "seal",
    "state_after",
]
