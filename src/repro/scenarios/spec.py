"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a plain, frozen, JSON-round-trippable value
describing one experimental condition for a replicated object:

- the **network**: a topology-aware delay model plus a baseline loss rate;
- the **fault schedule**: timed :class:`FaultEvent`s — partitions that
  later heal, crashes that later recover (with anti-entropy state rejoin
  where the algorithm supports it), loss bursts, delay spikes and
  explicit anti-entropy repair sweeps;
- the **workload profile**: closed-loop clients with think times, or
  open-loop Poisson arrivals; read-heavy/update-heavy mixes, hot-key
  skew, and cyclic quiet/burst phases.

Specs are deliberately *inert*: building the live simulation objects is
:class:`repro.scenarios.scenario.Scenario`'s job, so the same spec can be
shipped to a worker process, serialised into a report, or shrunk with
:meth:`ScenarioSpec.fast` for smoke runs.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from ..runtime.network import DelayModel


# ----------------------------------------------------------------------
# Delay models
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DelaySpec:
    """Named delay model + parameters (see :class:`DelayModel`).

    kinds: ``constant(delay)``, ``uniform(low, high)``,
    ``exponential(mean, floor)``, ``per-link(low, high, jitter)``.
    """

    kind: str = "uniform"
    params: Tuple[float, ...] = (0.5, 1.5)

    #: kind -> (min params, max params, parameter names for messages)
    _ARITY = {
        "constant": (1, 1, ("delay",)),
        "uniform": (2, 2, ("low", "high")),
        "exponential": (1, 2, ("mean", "floor")),
        "per-link": (2, 3, ("low", "high", "jitter")),
    }

    def __post_init__(self) -> None:
        """Reject malformed delay models at spec-parse time, with the
        offending parameter named — not as a ``TypeError`` from the
        factory or a nonsense delay sampled mid-run."""
        try:
            lo, hi, names = self._ARITY[self.kind]
        except KeyError:
            known = ", ".join(sorted(self._ARITY))
            raise ValueError(
                f"unknown delay model {self.kind!r}; known: {known}"
            ) from None
        count = len(self.params)
        if not (lo <= count <= hi):
            want = f"{lo}" if lo == hi else f"{lo}..{hi}"
            raise ValueError(
                f"delay model {self.kind!r} takes {want} parameter(s) "
                f"({', '.join(names)}), got {count}: {self.params!r}"
            )
        for name, value in zip(names, self.params):
            if not _finite(value) or value < 0:
                raise ValueError(
                    f"delay model {self.kind!r} parameter {name!r} must "
                    f"be a finite number >= 0, got {value!r}"
                )
        if self.kind in ("uniform", "per-link"):
            low, high = self.params[0], self.params[1]
            if low > high:
                raise ValueError(
                    f"delay model {self.kind!r} needs low <= high, "
                    f"got low={low!r} high={high!r}"
                )

    def build(self) -> DelayModel:
        factories = {
            "constant": DelayModel.constant,
            "uniform": DelayModel.uniform,
            "exponential": DelayModel.exponential,
            "per-link": DelayModel.per_link,
        }
        try:
            factory = factories[self.kind]
        except KeyError:
            known = ", ".join(sorted(factories))
            raise ValueError(
                f"unknown delay model {self.kind!r}; known: {known}"
            ) from None
        return factory(*self.params)


# ----------------------------------------------------------------------
# Fault schedule events
# ----------------------------------------------------------------------

#: every fault action the schedule understands (validated at spec parse)
FAULT_ACTIONS = (
    "partition",
    "heal",
    "crash",
    "recover",
    "loss",
    "delay-scale",
    "repair",
    "duplicate",
    "reorder",
    "flap",
    "partition-oneway",
    "crash-storm",
)


def _finite(value: Any) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault action, applied off the simulator clock.

    ``action`` is one of ``partition``, ``heal``, ``crash``, ``recover``,
    ``loss`` (set the loss rate: a pair of these makes a loss burst),
    ``delay-scale`` (scale sampled delays: a pair makes a delay spike),
    ``repair`` (one ring-shaped anti-entropy sweep over the live
    processes, for algorithms whose broadcast layer supports ``resync``),
    and the chaos vocabulary: ``duplicate`` (set the message-duplication
    rate), ``reorder`` (a per-link delivery-inversion burst of
    ``duration``), ``flap`` (the link between ``pids`` goes down/up for
    ``count`` cycles of ``duration``), ``partition-oneway`` (block the
    directed links from ``groups[0]`` to ``groups[1]`` until the next
    heal) and ``crash-storm`` (crash all of ``pids`` now, recover them
    all ``duration`` later).  Unused fields keep their defaults, which
    keeps the JSON small."""

    time: float
    action: str
    groups: Tuple[Tuple[int, ...], ...] = ()
    pid: int = -1
    rate: float = 0.0
    factor: float = 1.0
    pids: Tuple[int, ...] = ()
    duration: float = 0.0
    count: int = 0

    # Named constructors ------------------------------------------------
    @staticmethod
    def partition(time: float, *groups: Iterable[int]) -> "FaultEvent":
        return FaultEvent(
            time, "partition", groups=tuple(tuple(g) for g in groups)
        )

    @staticmethod
    def heal(time: float) -> "FaultEvent":
        return FaultEvent(time, "heal")

    @staticmethod
    def crash(time: float, pid: int) -> "FaultEvent":
        return FaultEvent(time, "crash", pid=pid)

    @staticmethod
    def recover(time: float, pid: int) -> "FaultEvent":
        return FaultEvent(time, "recover", pid=pid)

    @staticmethod
    def loss(time: float, rate: float) -> "FaultEvent":
        return FaultEvent(time, "loss", rate=rate)

    @staticmethod
    def delay_spike(time: float, factor: float) -> "FaultEvent":
        return FaultEvent(time, "delay-scale", factor=factor)

    @staticmethod
    def repair(time: float) -> "FaultEvent":
        return FaultEvent(time, "repair")

    @staticmethod
    def duplicate(time: float, rate: float) -> "FaultEvent":
        return FaultEvent(time, "duplicate", rate=rate)

    @staticmethod
    def reorder(time: float, duration: float) -> "FaultEvent":
        return FaultEvent(time, "reorder", duration=duration)

    @staticmethod
    def flap(
        time: float, src: int, dst: int, cycles: int = 3, period: float = 1.0
    ) -> "FaultEvent":
        return FaultEvent(
            time, "flap", pids=(src, dst), count=cycles, duration=period
        )

    @staticmethod
    def partition_oneway(
        time: float, src_group: Iterable[int], dst_group: Iterable[int]
    ) -> "FaultEvent":
        return FaultEvent(
            time,
            "partition-oneway",
            groups=(tuple(src_group), tuple(dst_group)),
        )

    @staticmethod
    def crash_storm(
        time: float, pids: Iterable[int], downtime: float = 3.0
    ) -> "FaultEvent":
        return FaultEvent(
            time, "crash-storm", pids=tuple(pids), duration=downtime
        )

    @staticmethod
    def from_dict(f: Dict[str, Any]) -> "FaultEvent":
        """Parse one event from its JSON dict form, validated."""
        return FaultEvent(
            time=f["time"],
            action=f["action"],
            groups=tuple(tuple(g) for g in f.get("groups", ())),
            pid=f.get("pid", -1),
            rate=f.get("rate", 0.0),
            factor=f.get("factor", 1.0),
            pids=tuple(f.get("pids", ())),
            duration=f.get("duration", 0.0),
            count=f.get("count", 0),
        ).validate()

    # ------------------------------------------------------------------
    def validate(self) -> "FaultEvent":
        """Reject malformed events with a clear message, at spec-parse
        time — not deep inside ``FaultSchedule.apply`` mid-run.  Returns
        ``self`` so callers can validate inline."""
        if not _finite(self.time) or self.time < 0:
            raise ValueError(
                f"fault event time must be a finite number >= 0, "
                f"got {self.time!r}"
            )
        action = self.action
        if action not in FAULT_ACTIONS:
            known = ", ".join(FAULT_ACTIONS)
            raise ValueError(
                f"unknown fault action {action!r}; known: {known}"
            )
        if action == "loss":
            # loss must stay below 1: a link that loses everything can
            # never deliver, so progress would be impossible
            if not _finite(self.rate) or not (0.0 <= self.rate < 1.0):
                raise ValueError(
                    f"loss rate must be in [0, 1), got {self.rate!r}"
                )
        elif action == "duplicate":
            # a full duplication storm (rate 1.0) is a valid chaos
            # configuration: every message is still delivered, just twice
            if not _finite(self.rate) or not (0.0 <= self.rate <= 1.0):
                raise ValueError(
                    f"duplicate rate must be in [0, 1], got {self.rate!r}"
                )
        elif action == "delay-scale":
            if not _finite(self.factor) or self.factor <= 0:
                raise ValueError(
                    f"delay-scale factor must be a finite number > 0, "
                    f"got {self.factor!r}"
                )
        elif action in ("crash", "recover"):
            if not isinstance(self.pid, int) or self.pid < 0:
                raise ValueError(
                    f"{action} needs a process id >= 0, got {self.pid!r}"
                )
        elif action == "partition":
            self._check_groups(minimum_groups=1)
        elif action == "partition-oneway":
            if len(self.groups) != 2:
                raise ValueError(
                    "partition-oneway needs exactly two groups "
                    f"(sources, destinations), got {len(self.groups)}"
                )
            self._check_groups(minimum_groups=2)
        elif action == "reorder":
            if not _finite(self.duration) or self.duration <= 0:
                raise ValueError(
                    f"reorder burst duration must be > 0, "
                    f"got {self.duration!r}"
                )
        elif action == "flap":
            if len(self.pids) != 2 or self.pids[0] == self.pids[1]:
                raise ValueError(
                    f"flap needs two distinct pids, got {self.pids!r}"
                )
            if any(not isinstance(p, int) or p < 0 for p in self.pids):
                raise ValueError(f"flap pids must be >= 0, got {self.pids!r}")
            if not isinstance(self.count, int) or self.count < 1:
                raise ValueError(
                    f"flap needs count >= 1 cycles, got {self.count!r}"
                )
            if not _finite(self.duration) or self.duration <= 0:
                raise ValueError(
                    f"flap cycle period must be > 0, got {self.duration!r}"
                )
        elif action == "crash-storm":
            if not self.pids:
                raise ValueError("crash-storm needs a non-empty pids tuple")
            if any(not isinstance(p, int) or p < 0 for p in self.pids):
                raise ValueError(
                    f"crash-storm pids must be >= 0, got {self.pids!r}"
                )
            if len(set(self.pids)) != len(self.pids):
                raise ValueError(
                    f"crash-storm pids must be distinct, got {self.pids!r}"
                )
            if not _finite(self.duration) or self.duration <= 0:
                raise ValueError(
                    f"crash-storm downtime must be > 0, got {self.duration!r}"
                )
        return self

    def _check_groups(self, minimum_groups: int) -> None:
        if len(self.groups) < minimum_groups:
            raise ValueError(
                f"{self.action} needs at least {minimum_groups} group(s), "
                f"got {len(self.groups)}"
            )
        seen: set = set()
        for group in self.groups:
            if not group:
                raise ValueError(f"{self.action} groups must be non-empty")
            for pid in group:
                if not isinstance(pid, int) or pid < 0:
                    raise ValueError(
                        f"{self.action} group members must be pids >= 0, "
                        f"got {pid!r}"
                    )
                if pid in seen:
                    raise ValueError(
                        f"{self.action} groups must be disjoint "
                        f"(pid {pid} appears twice)"
                    )
                seen.add(pid)


# ----------------------------------------------------------------------
# Workload profiles
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """How clients generate and pace invocations.

    ``kind`` selects the driver: ``closed`` (one op at a time, think time
    between completions) or ``open`` (Poisson arrivals at ``rate`` per
    client, issued whether or not earlier operations completed).

    The op mix targets a window-stream array: a write ``w(x, v)`` with
    probability ``write_ratio``, else a read ``r(x)``; the stream ``x``
    is stream 0 with probability ``hot_key_weight`` (contention) and
    uniform otherwise.  ``phases`` is a cyclic intensity profile of
    ``(duration, intensity)`` pairs: intensity multiplies the open-loop
    arrival rate and divides the closed-loop think time, so
    ``((6, 0.2), (3, 4.0))`` is quiet-then-burst."""

    kind: str = "closed"
    ops_per_process: int = 8
    write_ratio: float = 0.5
    hot_key_weight: float = 0.0
    think: Tuple[float, float] = (0.1, 1.0)
    rate: float = 1.0
    phases: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("closed", "open"):
            raise ValueError(f"unknown workload kind {self.kind!r}")
        if any(intensity <= 0 for _d, intensity in self.phases):
            raise ValueError("phase intensities must be positive")


# ----------------------------------------------------------------------
# The scenario spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative fault/workload scenario (see module docstring)."""

    name: str
    n: int = 3
    streams: int = 2
    k: int = 2
    delay: DelaySpec = field(default_factory=DelaySpec)
    loss_rate: float = 0.0
    faults: Tuple[FaultEvent, ...] = ()
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    quiescence_reads: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        """Dimension and rate checks at parse time, mirroring
        :meth:`FaultEvent.validate`: a bad spec should name its broken
        field here, not surface as an index error mid-run."""
        for name, minimum in (("n", 1), ("streams", 1), ("k", 1)):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
                raise ValueError(
                    f"scenario {name} must be an integer >= {minimum}, "
                    f"got {value!r}"
                )
        # like the loss fault event: rate 1 would mean no link ever
        # delivers, so no run could terminate
        if not _finite(self.loss_rate) or not (0.0 <= self.loss_rate < 1.0):
            raise ValueError(
                f"scenario loss_rate must be in [0, 1), "
                f"got {self.loss_rate!r}"
            )

    # ------------------------------------------------------------------
    def fast(self, ops: int = 4) -> "ScenarioSpec":
        """A shrunk copy for smoke runs: fewer ops, same faults."""
        workload = replace(
            self.workload, ops_per_process=min(self.workload.ops_per_process, ops)
        )
        return replace(self, workload=workload)

    @property
    def fault_horizon(self) -> float:
        """Time of the last scheduled fault (0 when there are none)."""
        return max((event.time for event in self.faults), default=0.0)

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ScenarioSpec":
        d = data.get("delay", {})
        delay = DelaySpec(
            kind=d.get("kind", "uniform"),
            params=tuple(d.get("params", (0.5, 1.5))),
        )
        faults = tuple(
            FaultEvent.from_dict(f) for f in data.get("faults", ())
        )
        w = data.get("workload", {})
        workload = WorkloadSpec(
            kind=w.get("kind", "closed"),
            ops_per_process=w.get("ops_per_process", 8),
            write_ratio=w.get("write_ratio", 0.5),
            hot_key_weight=w.get("hot_key_weight", 0.0),
            think=tuple(w.get("think", (0.1, 1.0))),
            rate=w.get("rate", 1.0),
            phases=tuple(tuple(p) for p in w.get("phases", ())),
        )
        return ScenarioSpec(
            name=data["name"],
            n=data.get("n", 3),
            streams=data.get("streams", 2),
            k=data.get("k", 2),
            delay=delay,
            loss_rate=data.get("loss_rate", 0.0),
            faults=faults,
            workload=workload,
            quiescence_reads=data.get("quiescence_reads", True),
            description=data.get("description", ""),
        )

    @staticmethod
    def from_json(text: str) -> "ScenarioSpec":
        return ScenarioSpec.from_dict(json.loads(text))
