"""Event-driven fault injection: applying a fault schedule to a run.

:class:`FaultSchedule` turns the inert :class:`FaultEvent` tuples of a
:class:`ScenarioSpec` into simulator callbacks against the live
:class:`Network`, the algorithm instance and the clients:

- ``partition``/``heal`` drive the network's held-message machinery
  (partitions delay, they do not lose); ``partition-oneway`` blocks only
  the directed links from the first group to the second (an asymmetric
  partition, cleared by the next heal);
- ``crash`` stops the process (network-level crash-stop) and pauses its
  client; ``recover`` rejoins it, fires the algorithm's
  :meth:`~repro.algorithms.base.ReplicatedObject.on_recover` anti-entropy
  hook, and resumes the client; ``crash-storm`` does both for a whole
  set of processes at once (correlated failure), recovering them all
  ``duration`` later;
- ``loss``/``delay-scale``/``duplicate`` move the network's fault dials
  (bursts, spikes and retransmission storms are pairs of these events);
- ``flap`` alternately blocks and unblocks both directions of one link
  for ``count`` cycles of ``duration`` (half down, half up), ending up;
- ``reorder`` starts a per-link delivery-inversion burst of ``duration``;
- ``repair`` runs one ring-shaped anti-entropy sweep over the live
  processes for broadcast layers that support ``resync`` — ``n - 1``
  spaced sweeps guarantee full dissemination after a lossy phase.

The schedule is a pure function of the spec and the seed: replaying the
same scenario with the same seed yields the identical history, which the
determinism tests pin down.  Every event is validated up front
(:meth:`FaultEvent.validate`), so malformed specs fail at construction
with a clear message instead of deep inside :meth:`FaultSchedule.apply`.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from ..runtime.network import Network
from ..runtime.simulator import Simulator
from .spec import FAULT_ACTIONS, FaultEvent

# backwards-compatible alias (the action list now lives with the spec)
_ACTIONS = FAULT_ACTIONS


class FaultSchedule:
    """Schedules and applies a sequence of :class:`FaultEvent`s."""

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        for event in events:
            event.validate()
        # stable sort: same-time events keep their listed order
        self.events = sorted(events, key=lambda e: e.time)
        self.applied = 0

    def install(
        self,
        sim: Simulator,
        network: Network,
        algorithm: Optional[Any] = None,
        clients: Optional[Sequence[Any]] = None,
    ) -> None:
        """Schedule every event at its absolute time (relative to now)."""
        for event in self.events:
            if event.time < sim.now:
                raise ValueError(
                    f"fault at t={event.time} is in the past (now={sim.now})"
                )
            sim.schedule(
                event.time - sim.now,
                lambda e=event: self.apply(e, network, algorithm, clients),
            )

    # ------------------------------------------------------------------
    def apply(
        self,
        event: FaultEvent,
        network: Network,
        algorithm: Optional[Any] = None,
        clients: Optional[Sequence[Any]] = None,
    ) -> None:
        self.applied += 1
        action = event.action
        if action == "partition":
            network.partition(*event.groups)
        elif action == "heal":
            network.heal()
        elif action == "crash":
            self._crash_one(network, algorithm, clients, event.pid)
        elif action == "recover":
            self._recover_one(network, algorithm, clients, event.pid)
        elif action == "loss":
            network.set_loss_rate(event.rate)
        elif action == "delay-scale":
            network.set_delay_scale(event.factor)
        elif action == "duplicate":
            network.set_duplicate_rate(event.rate)
        elif action == "reorder":
            network.start_reorder(event.duration)
        elif action == "partition-oneway":
            sources, destinations = event.groups
            network.block_links(
                tuple((s, d) for s in sources for d in destinations)
            )
        elif action == "flap":
            self._flap(network, event)
        elif action == "crash-storm":
            for pid in event.pids:
                self._crash_one(network, algorithm, clients, pid)
            network.schedule(
                event.duration,
                self._storm_recover,
                network,
                algorithm,
                clients,
                event.pids,
            )
        elif action == "repair":
            self._repair(network, algorithm)
        else:  # pragma: no cover - constructor validates
            raise ValueError(f"unknown fault action {action!r}")

    # ------------------------------------------------------------------
    @staticmethod
    def _crash_one(
        network: Network,
        algorithm: Optional[Any],
        clients: Optional[Sequence[Any]],
        pid: int,
    ) -> None:
        network.crash(pid)
        if algorithm is not None:
            algorithm.on_crash(pid)
        if clients is not None:
            clients[pid].pause()

    @staticmethod
    def _recover_one(
        network: Network,
        algorithm: Optional[Any],
        clients: Optional[Sequence[Any]],
        pid: int,
    ) -> None:
        network.recover(pid)
        if algorithm is not None:
            algorithm.on_recover(pid)
        if clients is not None:
            clients[pid].resume()

    def _storm_recover(
        self,
        network: Network,
        algorithm: Optional[Any],
        clients: Optional[Sequence[Any]],
        pids: Tuple[int, ...],
    ) -> None:
        """The tail of a crash-storm: every stormed process rejoins."""
        for pid in pids:
            self._recover_one(network, algorithm, clients, pid)

    @staticmethod
    def _flap(network: Network, event: FaultEvent) -> None:
        """``count`` down/up cycles of ``duration`` on one bidirectional
        link, starting down now and ending up."""
        src, dst = event.pids
        pairs = ((src, dst), (dst, src))
        period = event.duration
        sim = network
        network.block_links(pairs)
        for i in range(event.count):
            if i:
                sim.schedule(i * period, network.block_links, pairs)
            sim.schedule(i * period + period / 2, network.unblock_links, pairs)

    @staticmethod
    def _repair(network: Network, algorithm: Optional[Any]) -> None:
        """One anti-entropy ring pass: each live process pulls everything
        its next live neighbour has seen.  Repeated passes (spaced wider
        than the message delay) flow knowledge all the way around."""
        service = getattr(algorithm, "broadcast", None)
        resync = getattr(service, "resync", None)
        if resync is None:
            return
        live = [p for p in range(network.n) if not network.is_crashed(p)]
        if len(live) < 2:
            return
        for i, pid in enumerate(live):
            resync(pid, helper=live[(i + 1) % len(live)])
