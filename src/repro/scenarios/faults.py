"""Event-driven fault injection: applying a fault schedule to a run.

:class:`FaultSchedule` turns the inert :class:`FaultEvent` tuples of a
:class:`ScenarioSpec` into simulator callbacks against the live
:class:`Network`, the algorithm instance and the clients:

- ``partition``/``heal`` drive the network's held-message machinery
  (partitions delay, they do not lose);
- ``crash`` stops the process (network-level crash-stop) and pauses its
  client; ``recover`` rejoins it, fires the algorithm's
  :meth:`~repro.algorithms.base.ReplicatedObject.on_recover` anti-entropy
  hook, and resumes the client;
- ``loss``/``delay-scale`` move the network's fault dials (bursts and
  spikes are pairs of these events);
- ``repair`` runs one ring-shaped anti-entropy sweep over the live
  processes for broadcast layers that support ``resync`` — ``n - 1``
  spaced sweeps guarantee full dissemination after a lossy phase.

The schedule is a pure function of the spec and the seed: replaying the
same scenario with the same seed yields the identical history, which the
determinism tests pin down.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..runtime.network import Network
from ..runtime.simulator import Simulator
from .spec import FaultEvent

_ACTIONS = (
    "partition",
    "heal",
    "crash",
    "recover",
    "loss",
    "delay-scale",
    "repair",
)


class FaultSchedule:
    """Schedules and applies a sequence of :class:`FaultEvent`s."""

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        for event in events:
            if event.action not in _ACTIONS:
                known = ", ".join(_ACTIONS)
                raise ValueError(
                    f"unknown fault action {event.action!r}; known: {known}"
                )
        # stable sort: same-time events keep their listed order
        self.events = sorted(events, key=lambda e: e.time)
        self.applied = 0

    def install(
        self,
        sim: Simulator,
        network: Network,
        algorithm: Optional[Any] = None,
        clients: Optional[Sequence[Any]] = None,
    ) -> None:
        """Schedule every event at its absolute time (relative to now)."""
        for event in self.events:
            if event.time < sim.now:
                raise ValueError(
                    f"fault at t={event.time} is in the past (now={sim.now})"
                )
            sim.schedule(
                event.time - sim.now,
                lambda e=event: self.apply(e, network, algorithm, clients),
            )

    # ------------------------------------------------------------------
    def apply(
        self,
        event: FaultEvent,
        network: Network,
        algorithm: Optional[Any] = None,
        clients: Optional[Sequence[Any]] = None,
    ) -> None:
        self.applied += 1
        if event.action == "partition":
            network.partition(*event.groups)
        elif event.action == "heal":
            network.heal()
        elif event.action == "crash":
            network.crash(event.pid)
            if algorithm is not None:
                algorithm.on_crash(event.pid)
            if clients is not None:
                clients[event.pid].pause()
        elif event.action == "recover":
            network.recover(event.pid)
            if algorithm is not None:
                algorithm.on_recover(event.pid)
            if clients is not None:
                clients[event.pid].resume()
        elif event.action == "loss":
            network.set_loss_rate(event.rate)
        elif event.action == "delay-scale":
            network.set_delay_scale(event.factor)
        elif event.action == "repair":
            self._repair(network, algorithm)
        else:  # pragma: no cover - constructor validates
            raise ValueError(f"unknown fault action {event.action!r}")

    @staticmethod
    def _repair(network: Network, algorithm: Optional[Any]) -> None:
        """One anti-entropy ring pass: each live process pulls everything
        its next live neighbour has seen.  Repeated passes (spaced wider
        than the message delay) flow knowledge all the way around."""
        service = getattr(algorithm, "broadcast", None)
        resync = getattr(service, "resync", None)
        if resync is None:
            return
        live = [p for p in range(network.n) if not network.is_crashed(p)]
        if len(live) < 2:
            return
        for i, pid in enumerate(live):
            resync(pid, helper=live[(i + 1) % len(live)])
