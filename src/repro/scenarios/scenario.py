"""Executing a :class:`ScenarioSpec`: build, run, record.

:class:`Scenario` assembles the simulated system — simulator, network
with the spec's delay model, fault schedule, history recorder, algorithm
instance and one (closed- or open-loop) client per process — runs it to
quiescence, performs the post-quiescence stable reads, and returns a
:class:`RunResult`.

Every run is a pure function of ``(spec, algorithm, seed)``; the
compatibility shim :func:`repro.analysis.harness.run_workload` is a thin
adapter over :meth:`Scenario.run` with explicit scripts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Set, Type

from ..adts.window_stream import WindowStreamArray
from ..core.history import History
from ..core.operations import Invocation
from ..runtime.monitors import RuntimeMonitor
from ..runtime.network import DelayModel, Network, NetworkStats
from ..runtime.recorder import HistoryRecorder
from ..runtime.simulator import Simulator
from ..runtime.workload import Client, OpenLoopClient
from .faults import FaultSchedule
from .spec import ScenarioSpec
from .workloads import interarrival_sampler, make_script, think_sampler

#: rng stream separator for per-process script generation
_SCRIPT_SALT = 9_176_731


@dataclass
class RunResult:
    """Everything an experiment needs to know about one run."""

    history: History
    stable: Set[int]
    recorder: HistoryRecorder
    network_stats: NetworkStats
    algorithm: Any
    sim: Simulator
    duration: float
    ops: int
    issued: int = 0
    completed: int = 0
    spec: Optional[ScenarioSpec] = None
    monitor: Optional[RuntimeMonitor] = None

    @property
    def mean_latency(self) -> float:
        return self.recorder.mean_latency()

    @property
    def messages_per_op(self) -> float:
        return self.network_stats.sent / self.ops if self.ops else 0.0

    @property
    def blocked(self) -> int:
        """Operations issued by clients that never completed — the
        availability gap of non-wait-free algorithms under faults."""
        return max(0, self.issued - self.completed)


class Scenario:
    """A runnable scenario: ``Scenario(spec).run(AlgorithmCls, seed=...)``."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    def adt(self) -> WindowStreamArray:
        """The checker-side ADT matching the scenario's object."""
        return WindowStreamArray(self.spec.streams, self.spec.k)

    def scripts(self, seed: int) -> List[List[Invocation]]:
        """The per-process invocation scripts for ``seed`` (deterministic)."""
        return [
            make_script(
                random.Random(seed * _SCRIPT_SALT + pid),
                self.spec.workload,
                self.spec.streams,
                pid,
            )
            for pid in range(self.spec.n)
        ]

    # ------------------------------------------------------------------
    def run(
        self,
        algorithm_cls: Type[Any],
        seed: int = 0,
        *,
        scripts: Optional[Sequence[Sequence[Invocation]]] = None,
        think: Optional[Callable[[random.Random], float]] = None,
        delay: Optional[DelayModel] = None,
        quiescence_reads: Optional[Sequence[Invocation]] = None,
        post_setup: Optional[Callable[[Any], None]] = None,
        max_events: int = 5_000_000,
        monitors: bool = True,
        subscriber: Optional[Callable[[Any], None]] = None,
        **algorithm_kwargs: Any,
    ) -> RunResult:
        """Execute the scenario and return the observed history + stats.

        ``scripts``/``think``/``delay``/``quiescence_reads`` override the
        spec-derived defaults (the compatibility shim uses them); they are
        runtime objects and not part of the serialisable spec.

        ``monitors`` (default on) attaches a :class:`RuntimeMonitor` to
        the algorithm's broadcast layer when it has one; the monitor is
        a pure observer, so the recorded history is bit-identical either
        way and the result's :attr:`RunResult.monitor` carries any
        invariant violations it caught.

        ``subscriber`` is streamed every :class:`OpRecord` as it is
        recorded (see :meth:`HistoryRecorder.subscribe`) — this is how a
        :class:`repro.criteria.streaming_monitor.StreamingMonitor`
        watches the run live instead of replaying the finished history.
        """
        spec = self.spec
        # the spec owns the object dimensions: explicitly passed window
        # kwargs must agree, or scripts/quiescence reads and the checker
        # ADT would silently target a different object than the replica
        for dim in ("streams", "k"):
            value = algorithm_kwargs.get(dim)
            if value is not None and value != getattr(spec, dim):
                raise ValueError(
                    f"algorithm {dim}={value} contradicts spec "
                    f"{dim}={getattr(spec, dim)}"
                )
        adt_kwarg = algorithm_kwargs.get("adt")
        if isinstance(adt_kwarg, WindowStreamArray) and (
            adt_kwarg.streams != spec.streams or adt_kwarg.k != spec.k
        ):
            raise ValueError(
                f"algorithm adt dimensions ({adt_kwarg.streams}, "
                f"{adt_kwarg.k}) contradict spec ({spec.streams}, {spec.k})"
            )
        sim = Simulator(seed=seed)
        delay_model = delay or spec.delay.build()
        # a caller-supplied model may be reused across runs/cells: drop
        # any per-run state (e.g. per-link base delays) so this run is a
        # pure function of (spec, algorithm, seed) again
        delay_model.reset()
        network = Network(
            sim, spec.n, delay=delay_model, loss_rate=spec.loss_rate,
        )
        recorder = HistoryRecorder(spec.n)
        if subscriber is not None:
            recorder.subscribe(subscriber)
        algorithm = algorithm_cls(sim, network, recorder, **algorithm_kwargs)
        if post_setup is not None:
            post_setup(algorithm)
        monitor: Optional[RuntimeMonitor] = None
        if monitors:
            service = getattr(algorithm, "broadcast", None)
            if service is not None and hasattr(service, "monitor"):
                monitor = RuntimeMonitor(spec.n, sim=sim)
                service.monitor = monitor

        if scripts is None:
            scripts = self.scripts(seed)
        if len(scripts) != spec.n:
            raise ValueError("one script per process required")

        def do_invoke(
            pid: int, invocation: Invocation, done: Callable[[Any], None]
        ) -> None:
            algorithm.invoke(pid, invocation, done)

        if spec.workload.kind == "open":
            interarrival = interarrival_sampler(spec.workload, sim)
            clients: List[Any] = [
                OpenLoopClient(sim, pid, do_invoke, scripts[pid], interarrival)
                for pid in range(spec.n)
            ]
        else:
            sampler = think or think_sampler(spec.workload, sim)
            clients = [
                Client(sim, pid, do_invoke, scripts[pid], think=sampler)
                for pid in range(spec.n)
            ]

        schedule = FaultSchedule(spec.faults)
        schedule.install(sim, network, algorithm, clients)
        for client in clients:
            client.start(initial_delay=0.0)
        sim.run(max_events=max_events)

        # quiescence: nothing in flight anymore (the heap is drained)
        recorder.mark_quiescent()
        if quiescence_reads is None and spec.quiescence_reads:
            quiescence_reads = [
                Invocation("r", (x,)) for x in range(spec.streams)
            ]
        if quiescence_reads:
            for pid in range(spec.n):
                if network.is_crashed(pid):
                    continue
                for invocation in quiescence_reads:
                    algorithm.invoke(pid, invocation)
            sim.run(max_events=max_events)

        ops = recorder.count()
        return RunResult(
            history=recorder.to_history(),
            stable=recorder.stable_eids(),
            recorder=recorder,
            network_stats=network.stats,
            algorithm=algorithm,
            sim=sim,
            duration=sim.now,
            ops=ops,
            issued=sum(c.issued for c in clients),
            completed=sum(c.completed for c in clients),
            spec=spec,
            monitor=monitor,
        )
