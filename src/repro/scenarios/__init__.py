"""Scenario engine: declarative fault/workload scenarios + matrix runner.

The fifth layer of the library (core → adts → criteria → runtime/
algorithms → **scenarios**): declarative :class:`ScenarioSpec`s compose a
delay model, a timed fault schedule and a workload profile;
:class:`Scenario` executes one spec against one algorithm;
:func:`run_matrix` sweeps scenario × algorithm × seed across a process
pool and feeds every observed history to the criteria engine.  See
``python -m repro explore``.
"""

from .faults import FaultSchedule
from .matrix import (
    ALGORITHMS,
    AlgorithmEntry,
    MatrixCell,
    MatrixPool,
    MatrixReport,
    algorithm_names,
    format_matrix_report,
    run_matrix,
    run_scenario_cell,
)
from .registry import (
    CHAOS_SCENARIOS,
    SCALE_SCENARIOS,
    SCENARIOS,
    get_scenario,
    scenario_names,
)
from .scenario import RunResult, Scenario
from .spec import DelaySpec, FaultEvent, ScenarioSpec, WorkloadSpec
from .workloads import PhaseClock, make_script

__all__ = [
    "ALGORITHMS",
    "AlgorithmEntry",
    "CHAOS_SCENARIOS",
    "DelaySpec",
    "FaultEvent",
    "FaultSchedule",
    "MatrixCell",
    "MatrixPool",
    "MatrixReport",
    "PhaseClock",
    "RunResult",
    "SCALE_SCENARIOS",
    "SCENARIOS",
    "Scenario",
    "ScenarioSpec",
    "WorkloadSpec",
    "algorithm_names",
    "format_matrix_report",
    "get_scenario",
    "make_script",
    "run_matrix",
    "run_scenario_cell",
    "scenario_names",
]
