"""Built-in scenario registry: the named fault/workload scenarios.

Each entry is a :class:`ScenarioSpec`; ``python -m repro explore`` and the
matrix runner resolve scenarios by name, and tests pin their semantics.
Timings assume the default closed-loop pace (think 0.1–1.0, delays around
one time unit): faults land while the workload is in flight, and every
scenario restores full connectivity/membership before quiescence so the
convergence-class criteria are decidable at the stable reads.

Design notes:

- partitions always heal, crashes always recover (crash-*stop* forever is
  covered by ``run_workload``'s ``crash_plan`` shim and the dedicated
  fault tests);
- lossy phases end with ``n - 1`` spaced ``repair`` sweeps, which
  guarantee full dissemination for op-based broadcast algorithms (the
  state-based gossip algorithm needs no repair — that is its point);
- scenario sizes stay small enough for the exact checkers: histories of
  a few dozen events.  The two update-heavy scenarios
  (``partition-during-writes``, ``hot-key-contention``) run at ``n = 4``
  with up to ~14 concurrent updates — sizes the pre-sharding CCv search
  could not decide within budget, which is why they used to be capped at
  ``n = 3`` (see the sharded search + conflict cut in
  :mod:`repro.criteria.causal_search`).
"""

from __future__ import annotations

from typing import Dict, List

from .spec import DelaySpec, FaultEvent, ScenarioSpec, WorkloadSpec

F = FaultEvent


def _builtin() -> List[ScenarioSpec]:
    return [
        ScenarioSpec(
            name="partition-during-writes",
            description="two-by-two split while both sides keep writing; "
            "heals before quiescence (the CAP motivation of Sec. 1)",
            n=4,
            faults=(F.partition(1.5, (0, 1), (2, 3)), F.heal(8.0)),
            workload=WorkloadSpec(ops_per_process=5, write_ratio=0.6),
        ),
        ScenarioSpec(
            name="partition-minority",
            description="the sequencer's side is a singleton: SC blocks "
            "for everyone else, wait-free algorithms keep serving",
            n=4,
            faults=(F.partition(1.5, (0,), (1, 2, 3)), F.heal(8.0)),
            workload=WorkloadSpec(ops_per_process=6),
        ),
        ScenarioSpec(
            name="flaky-link",
            description="a 25% loss burst mid-run, then anti-entropy "
            "repair sweeps (gossip shrugs; op-based needs the repairs)",
            n=4,
            faults=(
                F.loss(1.0, 0.25),
                F.loss(6.0, 0.0),
                F.repair(10.0),
                F.repair(13.0),
                F.repair(16.0),
            ),
            workload=WorkloadSpec(ops_per_process=6),
        ),
        ScenarioSpec(
            name="rolling-crashes",
            description="one process at a time crashes and recovers with "
            "anti-entropy state rejoin",
            n=4,
            faults=(
                F.crash(2.0, 1),
                F.recover(6.0, 1),
                F.crash(7.0, 2),
                F.recover(11.0, 2),
                F.crash(12.0, 3),
                F.recover(16.0, 3),
            ),
            workload=WorkloadSpec(ops_per_process=6),
        ),
        ScenarioSpec(
            name="churn",
            description="processes leave and rejoin while the partition "
            "layout shifts underneath (repartition without heal)",
            n=4,
            faults=(
                F.crash(1.5, 3),
                F.recover(5.0, 3),
                F.partition(6.0, (0, 1), (2, 3)),
                F.partition(9.0, (0, 2), (1, 3)),
                F.heal(12.0),
                F.crash(13.0, 1),
                F.recover(15.5, 1),
            ),
            workload=WorkloadSpec(ops_per_process=6),
        ),
        ScenarioSpec(
            name="hot-key-contention",
            description="update-heavy traffic piling onto stream 0 "
            "(85% hot-key skew): maximal write-write concurrency",
            n=4,
            streams=4,
            workload=WorkloadSpec(
                ops_per_process=5, write_ratio=0.6, hot_key_weight=0.85
            ),
        ),
        ScenarioSpec(
            name="open-loop-overload",
            description="Poisson arrivals faster than the round trip: "
            "open-loop load does not slow down for the sequencer",
            n=3,
            delay=DelaySpec("uniform", (1.0, 3.0)),
            workload=WorkloadSpec(
                kind="open", ops_per_process=8, rate=3.0
            ),
        ),
        ScenarioSpec(
            name="long-fat-network",
            description="heterogeneous high-delay links (stable fast and "
            "slow paths): maximal reordering pressure",
            n=4,
            delay=DelaySpec("per-link", (2.0, 12.0, 0.2)),
            workload=WorkloadSpec(ops_per_process=6),
        ),
        ScenarioSpec(
            name="delay-spike",
            description="a 6x congestion spike mid-run, then back to "
            "normal",
            n=4,
            faults=(F.delay_spike(2.0, 6.0), F.delay_spike(7.0, 1.0)),
            workload=WorkloadSpec(ops_per_process=6),
        ),
        ScenarioSpec(
            name="quiet-then-burst",
            description="cyclic phases: long quiet trickle, then a dense "
            "burst of traffic",
            n=4,
            workload=WorkloadSpec(
                ops_per_process=6, phases=((5.0, 0.25), (2.0, 5.0))
            ),
        ),
    ]


def _scale() -> List[ScenarioSpec]:
    """The scale-up tier: ≥10k-op open-loop hot-key workloads at n=8 and
    n=12.  These exist to exercise the runtime plane (indexed causal
    delivery, tuple-heap scheduler, causal-stability GC) at a volume the
    pre-PR 5 runtime could not finish in reasonable time; they are kept
    out of the *default* sweep because exact history checkers (CC/CCv/SC)
    are hopeless at 10k events — run them with the convergence-checkable
    algorithms (``lww``, ``gossip``), whose CONV verdict is a state
    comparison and stays conclusive at any scale (see
    ``benchmarks/bench_runtime.py --scale``)."""
    return [
        ScenarioSpec(
            name="scale-n8-hotkey",
            description="10,400 Poisson ops over 8 replicas, 80% of the "
            "writes piling onto stream 0 — the runtime-plane volume test",
            n=8,
            streams=4,
            workload=WorkloadSpec(
                kind="open", ops_per_process=1300, rate=4.0,
                write_ratio=0.5, hot_key_weight=0.8,
            ),
        ),
        ScenarioSpec(
            name="scale-n12-hotkey",
            description="10,800 Poisson ops over 12 replicas with a "
            "mid-run two-by-two split that heals — held-flush and "
            "causal buffering at volume",
            n=12,
            streams=4,
            faults=(
                F.partition(60.0, (0, 1, 2, 3, 4, 5), (6, 7, 8, 9, 10, 11)),
                F.heal(160.0),
            ),
            workload=WorkloadSpec(
                kind="open", ops_per_process=900, rate=4.0,
                write_ratio=0.5, hot_key_weight=0.8,
            ),
        ),
        # the PR 8 fan-out tiers: at n=32 the eager flood costs 992
        # sends per broadcast, at n=64 it is 4032 — these cells default
        # to the lazy-push algorithm family (see
        # ``matrix.SCALE_TIER_ALGORITHMS``); their CC/CCv verdicts come
        # from the streaming monitor (search cannot start at 10k ops)
        # and CONV from the live-state comparison
        ScenarioSpec(
            name="scale-n32-hotkey",
            description="10,240 Poisson ops over 32 replicas, hot-key "
            "contention — the relay-suppression tier: runs on the "
            "push/lazy-push broadcast family",
            n=32,
            streams=4,
            workload=WorkloadSpec(
                kind="open", ops_per_process=320, rate=4.0,
                write_ratio=0.5, hot_key_weight=0.8,
            ),
        ),
        ScenarioSpec(
            name="scale-n64-hotkey",
            description="10,240 Poisson ops over 64 replicas — the "
            "eager flood would cost 4032 sends per broadcast here; "
            "only the lazy family finishes inside a CI wall cap",
            n=64,
            streams=4,
            workload=WorkloadSpec(
                kind="open", ops_per_process=160, rate=4.0,
                write_ratio=0.5, hot_key_weight=0.8,
            ),
        ),
    ]


def _chaos() -> List[ScenarioSpec]:
    """The chaos tier: hand-picked demonstrations of the extended fault
    vocabulary (PR 6) — asymmetric partitions, flapping links, duplicate
    storms, reorder bursts and correlated crash storms.  Kept out of the
    *default* sweep so its verdict baselines stay comparable across
    versions; the chaos driver (``python -m repro chaos``) explores the
    same vocabulary randomly."""
    return [
        ScenarioSpec(
            name="asymmetric-oneway",
            description="one-way partition: (0,1) can hear (2,3) but not "
            "the reverse — acks flow, updates do not, until the heal",
            n=4,
            faults=(
                F.partition_oneway(1.5, (0, 1), (2, 3)),
                F.heal(7.0),
            ),
            workload=WorkloadSpec(ops_per_process=5, write_ratio=0.6),
        ),
        ScenarioSpec(
            name="dup-storm-flap",
            description="a retransmission storm (30% duplicates) over a "
            "flapping link, then a two-replica crash storm and a reorder "
            "burst — the full chaos vocabulary in one run",
            n=4,
            faults=(
                F.duplicate(0.5, 0.3),
                F.flap(2.0, 0, 3, cycles=2, period=1.0),
                F.crash_storm(5.0, (1, 2), downtime=2.5),
                F.reorder(9.0, 1.5),
                F.duplicate(12.0, 0.0),
                F.heal(12.5),
            ),
            workload=WorkloadSpec(ops_per_process=6, write_ratio=0.6),
        ),
    ]


SCENARIOS: Dict[str, ScenarioSpec] = {spec.name: spec for spec in _builtin()}

#: scale-up tier, resolvable by name but excluded from the default sweep
SCALE_SCENARIOS: Dict[str, ScenarioSpec] = {
    spec.name: spec for spec in _scale()
}

#: chaos tier, resolvable by name but excluded from the default sweep
CHAOS_SCENARIOS: Dict[str, ScenarioSpec] = {
    spec.name: spec for spec in _chaos()
}


def scenario_names(
    include_scale: bool = False, include_chaos: bool = False
) -> List[str]:
    names = list(SCENARIOS)
    if include_scale:
        names.extend(SCALE_SCENARIOS)
    if include_chaos:
        names.extend(CHAOS_SCENARIOS)
    return names


def get_scenario(name: str) -> ScenarioSpec:
    for tier in (SCENARIOS, SCALE_SCENARIOS, CHAOS_SCENARIOS):
        try:
            return tier[name]
        except KeyError:
            continue
    known = ", ".join(scenario_names(include_scale=True, include_chaos=True))
    raise KeyError(f"unknown scenario {name!r}; known: {known}")
