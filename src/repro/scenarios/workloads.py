"""Workload generation from a :class:`WorkloadSpec`.

Scripts target the window-stream array ADT (the paper's guideline object)
so that every algorithm in the matrix — specialised window algorithms and
generic constructions alike — runs the identical invocation sequence.
Written values are distinct per (process, index), which keeps the
dependency analysis of the checkers sharp.

Pacing is separated from content: :func:`make_script` draws the op
sequence from a seeded rng, while :func:`think_sampler` /
:func:`interarrival_sampler` build the closed-/open-loop pacing callables,
including the cyclic quiet/burst phase profile.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence, Tuple

from ..core.operations import Invocation
from ..runtime.simulator import Simulator
from .spec import WorkloadSpec


class PhaseClock:
    """Cyclic intensity profile over simulated time.

    ``phases`` is a sequence of ``(duration, intensity)`` pairs repeated
    forever; with no phases the intensity is constantly 1."""

    def __init__(self, phases: Sequence[Tuple[float, float]] = ()) -> None:
        self.phases = tuple(phases)
        self.total = sum(duration for duration, _ in self.phases)

    def intensity(self, now: float) -> float:
        if not self.phases or self.total <= 0:
            return 1.0
        t = now % self.total
        for duration, intensity in self.phases:
            if t < duration:
                return intensity
            t -= duration
        return self.phases[-1][1]


def pick_stream(rng: random.Random, spec: WorkloadSpec, streams: int) -> int:
    """Hot-key skew: stream 0 with probability ``hot_key_weight``,
    uniform otherwise (so weight 0 is the plain uniform draw)."""
    if spec.hot_key_weight and rng.random() < spec.hot_key_weight:
        return 0
    return rng.randrange(streams)


def make_script(
    rng: random.Random, spec: WorkloadSpec, streams: int, pid: int
) -> List[Invocation]:
    """The scripted invocation sequence of one client (content only)."""
    # per-process value namespaces keep the recorded history
    # differentiated (no value written twice), which the bad-pattern
    # checkers require: the stride must exceed ops_per_process.  Long
    # workloads (the 10k-op scale tiers) used to overflow the historic
    # 1_000 stride and silently collide across processes; the stride
    # only widens for them so that every ≤1000-op history stays
    # bit-identical to the committed golden fingerprints.
    stride = 1_000 if spec.ops_per_process <= 1_000 else 1_000_000
    script: List[Invocation] = []
    for i in range(spec.ops_per_process):
        x = pick_stream(rng, spec, streams)
        if rng.random() < spec.write_ratio:
            script.append(Invocation("w", (x, pid * stride + i + 1)))
        else:
            script.append(Invocation("r", (x,)))
    return script


def think_sampler(
    spec: WorkloadSpec, sim: Simulator
) -> Callable[[random.Random], float]:
    """Closed-loop think time: uniform in ``spec.think``, divided by the
    current phase intensity (bursts think faster)."""
    clock = PhaseClock(spec.phases)
    lo, hi = spec.think

    def think(rng: random.Random) -> float:
        return rng.uniform(lo, hi) / clock.intensity(sim.now)

    return think


def interarrival_sampler(
    spec: WorkloadSpec, sim: Simulator
) -> Callable[[random.Random], float]:
    """Open-loop Poisson gaps at ``spec.rate`` × phase intensity."""
    clock = PhaseClock(spec.phases)

    def interarrival(rng: random.Random) -> float:
        return rng.expovariate(spec.rate * clock.intensity(sim.now))

    return interarrival
