"""Scenario × algorithm × seed matrix runner.

Executes every combination across a ``multiprocessing`` pool (each cell
is an independent seeded simulation, so the sweep is embarrassingly
parallel), pipes each observed history straight into the criteria engine,
and aggregates verdicts plus latency/message statistics into one report.

Each algorithm advertises the criterion the paper places it at (Fig. 1):
the causal algorithms must pass it on *every* scenario, while the
sequencer-based SC baseline is expected to be flagged unavailable
(blocked operations, delay-dependent latency) under partition and crash
scenarios — exactly the paper's CAP motivation.  ``python -m repro
explore`` is the CLI front end.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..adts.window_stream import WindowStreamArray
from ..algorithms import (
    CCWindowArray,
    CCvWindowArray,
    GenericCausal,
    GenericCCv,
    GossipCCvWindowArray,
    LwwReplication,
    PramReplication,
    ScSequencer,
)
from ..criteria import SearchBudgetExceeded, check
from ..criteria.streaming_monitor import monitor_for_adt
from ..util.tables import render_table
from .registry import get_scenario, scenario_names
from .scenario import RunResult, Scenario
from .spec import ScenarioSpec

#: node budget per criterion check; exceeding it marks the cell
#: inconclusive instead of wrong
CHECK_BUDGET = 400_000

#: ops beyond which the enumeration search is not even attempted: its
#: setup (history order structure) is quadratic in events, so a 10k-op
#: scale-tier history would burn minutes before the node budget could
#: trip.  Far above every exact-checkable cell (the default sweep tops
#: out at a few dozen ops); cells past it come back inconclusive and
#: the streaming monitor (PR 7) decides them.
SEARCH_MAX_OPS = 512

#: ops per process in ``--fast`` (smoke) mode
FAST_OPS = 3


@dataclass(frozen=True)
class AlgorithmEntry:
    """One row of the algorithm registry."""

    key: str
    cls: type
    criterion: str  # advertised criterion: CC | CCV | PC | SC | CONV
    kwargs_style: str  # "window" (streams/k) | "adt" (generic object)
    gossip: bool = False  # needs start_gossip after construction
    #: guarantee void on lossy channels: a lost sequenced message lets an
    #: operation take effect remotely without ever completing at its
    #: origin, so the recorded history can expose unwritten values
    needs_reliable: bool = False
    #: extra constructor kwargs, as a hashable (key, value) tuple — how
    #: the lazy-transport variants select ``lazy=True``
    extra: Tuple[Tuple[str, Any], ...] = ()
    #: part of the default sweep?  Non-default entries (the lazy family)
    #: are resolvable by explicit ``--algorithm`` / the scale tiers but
    #: excluded from :func:`algorithm_names`, so the bit-identity
    #: runtime-bench baseline never gains rows
    default: bool = True


ALGORITHMS: Dict[str, AlgorithmEntry] = {
    entry.key: entry
    for entry in (
        AlgorithmEntry("cc-fig4", CCWindowArray, "CC", "window"),
        AlgorithmEntry("ccv-fig5", CCvWindowArray, "CCV", "window"),
        AlgorithmEntry("cc-generic", GenericCausal, "CC", "adt"),
        AlgorithmEntry("ccv-generic", GenericCCv, "CCV", "adt"),
        AlgorithmEntry("gossip", GossipCCvWindowArray, "CONV", "window", gossip=True),
        AlgorithmEntry("pram", PramReplication, "PC", "adt"),
        AlgorithmEntry("lww", LwwReplication, "CONV", "adt"),
        AlgorithmEntry(
            "sc-sequencer", ScSequencer, "SC", "adt", needs_reliable=True
        ),
        # the push/lazy-push transport family (PR 8): same algorithms,
        # ~n·log n messages per broadcast instead of n(n-1).  Delivery
        # schedules differ from the eager flood, so these are *not* in
        # the default sweep (default=False keeps the bit-identity
        # baseline untouched); the n=32/64 scale tiers run on them.
        AlgorithmEntry(
            "lww-lazy",
            LwwReplication,
            "CONV",
            "adt",
            extra=(("lazy", True),),
            default=False,
        ),
        AlgorithmEntry(
            "ccv-lazy",
            CCvWindowArray,
            "CCV",
            "window",
            extra=(("lazy", True),),
            default=False,
        ),
    )
}


#: algorithms whose explore verdict stays conclusive on the 10k-op
#: scale-up scenarios: their CONV criterion is a live-state comparison,
#: not an exact search over the recorded history (which is hopeless at
#: that event count — CC/CCv cells would only come back inconclusive)
SCALE_ALGORITHMS: Tuple[str, ...] = ("lww", "gossip")

#: the lazy-transport family the n=32/64 tiers default to: the eager
#: flood's n(n-1) fan-out drowns the simulation plane there (that
#: asymmetry is the point of PR 8).  ccv-lazy cells are decided by the
#: streaming monitor (the enumeration search cannot start at 10k ops);
#: lww-lazy cells by the CONV live-state comparison.
LAZY_SCALE_ALGORITHMS: Tuple[str, ...] = ("lww-lazy", "ccv-lazy")

#: per-scenario algorithm tuples of the scale tier (scenarios absent
#: here use SCALE_ALGORITHMS)
SCALE_TIER_ALGORITHMS: Dict[str, Tuple[str, ...]] = {
    "scale-n32-hotkey": LAZY_SCALE_ALGORITHMS,
    "scale-n64-hotkey": LAZY_SCALE_ALGORITHMS,
}


def scale_algorithms_for(scenario: str) -> Tuple[str, ...]:
    """The default algorithm tuple of one scale-tier scenario."""
    return SCALE_TIER_ALGORITHMS.get(scenario, SCALE_ALGORITHMS)


def algorithm_names() -> List[str]:
    """The default sweep's algorithms (non-default entries — the lazy
    transport family — are resolvable by explicit key only)."""
    return [key for key, entry in ALGORITHMS.items() if entry.default]


def _build_kwargs(entry: AlgorithmEntry, spec: ScenarioSpec) -> Dict[str, Any]:
    if entry.kwargs_style == "window":
        kwargs: Dict[str, Any] = {"streams": spec.streams, "k": spec.k}
    else:
        kwargs = {"adt": WindowStreamArray(spec.streams, spec.k)}
    kwargs.update(entry.extra)
    return kwargs


def build_post_setup(entry: AlgorithmEntry, spec: ScenarioSpec):
    """Post-construction hook for ``Scenario.run``: gossip algorithms
    need their periodic anti-entropy started, budgeted past the last
    scheduled fault so post-heal exchanges still happen.  Open-loop
    workloads keep issuing for ``ops_per_process / rate`` time units
    regardless of system speed, so the budget must also outlast the
    arrival horizon — the 10k-op scale scenarios run for hundreds of
    time units and would otherwise stop gossiping mid-traffic."""
    if not entry.gossip:
        return None
    horizon = spec.fault_horizon
    if spec.workload.kind == "open" and spec.workload.rate > 0:
        horizon += spec.workload.ops_per_process / spec.workload.rate
    rounds = int(horizon) + 30

    def post_setup(obj: Any) -> None:
        obj.start_gossip(rounds=rounds)

    return post_setup


def _replicas_converged(algorithm: Any, spec: ScenarioSpec) -> bool:
    """The CONV verdict: all live replicas expose identical state."""
    live = [
        pid for pid in range(algorithm.n)
        if not algorithm.network.is_crashed(pid)
    ]
    if not live:
        return True
    if hasattr(algorithm, "window"):
        states = [
            tuple(algorithm.window(pid, x) for x in range(spec.streams))
            for pid in live
        ]
    else:
        states = [algorithm.state_of(pid) for pid in live]
    return all(state == states[0] for state in states[1:])


# ----------------------------------------------------------------------
# One cell
# ----------------------------------------------------------------------
@dataclass
class MatrixCell:
    """Verdict + stats of one (scenario, algorithm, seed) run."""

    scenario: str
    algorithm: str
    criterion: str
    seed: int
    ok: Optional[bool]  # None = inconclusive (search budget exceeded)
    expected: bool  # is the criterion expected to hold here?
    wait_free: bool
    available: bool
    blocked: int
    ops: int
    mean_latency: float
    messages_per_op: float
    wall_seconds: float
    note: str = ""
    monitor_violations: int = 0
    #: structured (kind, detail) failure records — the shape shared with
    #: chaos trial outcomes and the streaming monitor's
    #: :meth:`MonitorViolation.as_failure`; empty on clean cells
    failures: List[Tuple[str, Any]] = field(default_factory=list)
    #: streaming-monitor verdicts + stats when explore ran with
    #: ``--monitor`` (None otherwise): ``{"criteria": {...}, "stats": {...}}``
    streaming: Optional[Dict[str, Any]] = None
    #: per-run network accounting (sent / delivered / suppressed_relays
    #: / pulled), the message-complexity surface of the lazy transport
    network: Dict[str, int] = field(default_factory=dict)

    @property
    def failure(self) -> bool:
        return self.expected and self.ok is False


def run_scenario_cell(
    scenario_name: str,
    algorithm: str,
    seed: int,
    fast_ops: int = 0,
    subscriber: Any = None,
) -> RunResult:
    """Run one (scenario, algorithm, seed) cell and return its result.

    The shared cell-assembly recipe — spec lookup (optionally shrunk),
    registry entry, algorithm kwargs, gossip post-setup — used by the
    matrix worker and by the litmus scenario-history generator.
    ``subscriber`` is streamed every :class:`OpRecord` live (the
    streaming monitor attaches here)."""
    spec = get_scenario(scenario_name)
    if fast_ops:
        spec = spec.fast(fast_ops)
    entry = ALGORITHMS[algorithm]
    return Scenario(spec).run(
        entry.cls, seed=seed, post_setup=build_post_setup(entry, spec),
        subscriber=subscriber,
        **_build_kwargs(entry, spec),
    )


def _monitor_criteria(entry: AlgorithmEntry) -> Tuple[str, ...]:
    """What the streaming monitor checks on this cell: the advertised
    criterion when it is one the monitor supports, plus WCC (free —
    decided by the same co-level patterns).  Cells advertising anything
    else get an *informational* CCv verdict (never folded into the cell
    verdict): SC implies CCv, convergent algorithms aim at it, and PRAM
    legitimately fails it."""
    if entry.criterion == "CC":
        return ("WCC", "CC")
    return ("WCC", "CCV")


def _run_cell(job: Tuple[Any, ...]) -> MatrixCell:
    """Worker entry point: run one cell (picklable in, picklable out).

    ``job`` is ``(scenario, algorithm, seed, fast_ops[, monitor])``."""
    scenario_name, algo_key, seed, fast_ops = job[:4]
    with_monitor = bool(job[4]) if len(job) > 4 else False
    spec = get_scenario(scenario_name)
    if fast_ops:
        spec = spec.fast(fast_ops)
    entry = ALGORITHMS[algo_key]
    scenario = Scenario(spec)
    t0 = time.perf_counter()

    streaming_monitor = None
    subscriber = None
    if with_monitor:
        streaming_monitor = monitor_for_adt(
            scenario.adt(), spec.n, criteria=_monitor_criteria(entry)
        )
        if streaming_monitor is not None:
            subscriber = streaming_monitor.subscriber()

    result = run_scenario_cell(
        scenario_name, algo_key, seed, fast_ops, subscriber=subscriber
    )

    note = ""
    failures: List[Tuple[str, Any]] = []
    if entry.criterion == "CONV":
        ok: Optional[bool] = _replicas_converged(result.algorithm, spec)
        if ok is False:
            failures.append(
                ("divergence", "live replicas disagree at quiescence")
            )
    elif result.ops > SEARCH_MAX_OPS:
        ok = None
        note = "history beyond enumeration-search reach"
    else:
        kwargs = (
            {"max_nodes": CHECK_BUDGET}
            if entry.criterion in ("CC", "CCV", "WCC")
            else {}
        )
        try:
            ok = bool(check(result.history, scenario.adt(), entry.criterion, **kwargs))
        except SearchBudgetExceeded:
            ok = None
            note = "search budget exceeded"
        if ok is False:
            failures.append(
                ("criterion", f"{entry.criterion} conclusively violated")
            )

    # streaming monitor (PR 7): cross-validates the search verdict on
    # the advertised criterion, and *decides* cells the search cannot
    # touch (scale-tier histories); on CONV cells it is informational
    streaming: Optional[Dict[str, Any]] = None
    if streaming_monitor is not None:
        verdicts = streaming_monitor.finalize()
        streaming = {
            "criteria": {
                crit: {
                    "ok": v.ok,
                    "reason": v.reason,
                    "pattern": v.violation.pattern if v.violation else None,
                }
                for crit, v in verdicts.items()
            },
            "stats": streaming_monitor.stats(),
        }
        mv = verdicts.get(entry.criterion)
        if mv is not None and mv.ok is not None:
            if mv.ok is False and mv.violation is not None:
                failures.append(mv.violation.as_failure())
            if ok is None:
                ok = mv.ok
                note = (note + "; " if note else "") + (
                    "decided by streaming monitor"
                )
            elif bool(ok) != mv.ok:
                failures.append(
                    (
                        "monitor-disagreement",
                        {
                            "criterion": entry.criterion,
                            "search": bool(ok),
                            "monitor": mv.ok,
                            "reason": mv.reason,
                        },
                    )
                )
                ok = False
                note = (note + "; " if note else "") + (
                    f"monitor/search disagreement on {entry.criterion}"
                )

    # runtime invariant monitors (PR 6): a violation is a correctness
    # failure regardless of what the history checker concluded
    monitor_violations = 0
    if result.monitor is not None and not result.monitor.ok:
        monitor_violations = len(result.monitor.violations)
        ok = False
        note = (note + "; " if note else "") + result.monitor.summary()
        for violation in result.monitor.violations:
            failures.append((violation.kind, str(violation)))

    # crash-storm embeds its own recovery (every stormed process rejoins)
    has_recovery = any(
        e.action in ("recover", "crash-storm") for e in spec.faults
    )
    has_loss = spec.loss_rate > 0 or any(
        e.action == "loss" and e.rate > 0 for e in spec.faults
    )
    expected = entry.cls.supports_recovery or not has_recovery
    if not expected:
        note = (note + "; " if note else "") + "recovery unsupported"
    if entry.needs_reliable and has_loss:
        expected = False
        note = (note + "; " if note else "") + "lossy channels void assumption"
    blocked = result.blocked
    if blocked:
        note = (note + "; " if note else "") + f"{blocked} ops blocked"

    return MatrixCell(
        scenario=scenario_name,
        algorithm=algo_key,
        criterion=entry.criterion,
        seed=seed,
        ok=ok,
        expected=expected,
        wait_free=bool(entry.cls.wait_free),
        available=blocked == 0,
        blocked=blocked,
        ops=result.ops,
        mean_latency=result.mean_latency,
        messages_per_op=result.messages_per_op,
        wall_seconds=time.perf_counter() - t0,
        note=note,
        monitor_violations=monitor_violations,
        failures=failures,
        streaming=streaming,
        network={
            "sent": result.network_stats.sent,
            "delivered": result.network_stats.delivered,
            "suppressed_relays": result.network_stats.suppressed_relays,
            "pulled": result.network_stats.pulled,
        },
    )


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
class MatrixPool:
    """A reusable worker pool for repeated :func:`run_matrix` calls.

    Forking a pool per sweep is cheap once, but callers that explore many
    sweeps (the runtime benchmark, the CLI with ``--scale``, parameter
    scans) pay the fork + import tax per call; sharing one ``MatrixPool``
    amortises it.  Usable as a context manager::

        with MatrixPool(jobs=4) as pool:
            a = run_matrix(scenarios=[...], pool=pool)
            b = run_matrix(scenarios=[...], pool=pool)

    ``jobs <= 1`` degrades to serial in-process execution (no fork), so
    callers can thread a single code path through either mode.  Cell
    *ordering* is identical either way: jobs are generated in a fixed
    (scenario, algorithm, seed) nested-loop order and ``Pool.map``
    preserves input order, so reports are deterministically ordered no
    matter how many workers raced over them.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        # None and 0 both mean host-sized (matching the CLI's --jobs 0)
        self.jobs = jobs if jobs else (os.cpu_count() or 2)
        self._pool = None
        if self.jobs > 1:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._pool = ctx.Pool(processes=self.jobs)

    def map(self, fn, jobs_in):
        if self._pool is None:
            return [fn(job) for job in jobs_in]
        return self._pool.map(fn, jobs_in)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "MatrixPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
@dataclass
class MatrixReport:
    cells: List[MatrixCell] = field(default_factory=list)

    @property
    def failures(self) -> List[MatrixCell]:
        return [cell for cell in self.cells if cell.failure]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def inconclusive(self) -> List[MatrixCell]:
        return [cell for cell in self.cells if cell.ok is None]

    def non_wait_free_flagged(self) -> List[MatrixCell]:
        """Cells where a non-wait-free algorithm showed its colours:
        blocked operations or delay-dependent latency."""
        return [
            cell
            for cell in self.cells
            if not cell.wait_free
            and (cell.blocked > 0 or cell.mean_latency > 0.0)
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "cells": [asdict(cell) for cell in self.cells],
        }


def run_matrix(
    scenarios: Optional[Sequence[str]] = None,
    algorithms: Optional[Sequence[str]] = None,
    seeds: int = 2,
    jobs: Optional[int] = None,
    fast: bool = False,
    pool: Optional[MatrixPool] = None,
    monitor: bool = False,
    only: Optional[str] = None,
) -> MatrixReport:
    """Run the scenario × algorithm × seed sweep, in parallel.

    ``jobs=None`` sizes the pool to the host; ``jobs=1`` runs serially in
    this process (deterministic debugging, no fork).  Pass ``pool`` (see
    :class:`MatrixPool`) to reuse one worker pool across several sweeps;
    ``jobs`` is then ignored.  Cells come back in the fixed (scenario,
    algorithm, seed) generation order in every mode.

    ``monitor`` attaches the streaming bad-pattern monitor to every cell
    (live, via the recorder subscription): its verdicts and stats land
    in :attr:`MatrixCell.streaming`, disagreements with the enumeration
    search fail the cell, and cells the search left inconclusive are
    decided by the monitor.

    ``only`` narrows the sweep to cells whose ``scenario/algorithm``
    label contains the substring (the same filter shape as
    ``bench_runtime.py --only``); a filter matching no cell is an
    error, not an empty green report."""
    scenario_keys = list(scenarios) if scenarios else scenario_names()
    algo_keys = list(algorithms) if algorithms else algorithm_names()
    for name in scenario_keys:
        get_scenario(name)  # fail fast on typos
    for key in algo_keys:
        if key not in ALGORITHMS:
            known = ", ".join(ALGORITHMS)
            raise KeyError(f"unknown algorithm {key!r}; known: {known}")

    fast_ops = FAST_OPS if fast else 0
    cells_in = [
        (scenario, algo, seed, fast_ops, monitor)
        for scenario in scenario_keys
        for algo in algo_keys
        for seed in range(seeds)
        if only is None or only in f"{scenario}/{algo}"
    ]
    if only is not None and not cells_in:
        labels = sorted(
            f"{s}/{a}" for s in scenario_keys for a in algo_keys
        )
        raise KeyError(
            f"--only {only!r} matches no cell; cells: {', '.join(labels)}"
        )
    if pool is not None:
        cells = pool.map(_run_cell, cells_in)
    else:
        if jobs is None or jobs == 0:
            jobs = os.cpu_count() or 2
        # never fork more workers than there are cells
        with MatrixPool(min(jobs, max(1, len(cells_in)))) as owned:
            cells = owned.map(_run_cell, cells_in)
    return MatrixReport(cells=cells)


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def _verdict(cells: List[MatrixCell]) -> str:
    passed = sum(1 for c in cells if c.ok)
    inconclusive = sum(1 for c in cells if c.ok is None)
    total = len(cells)
    if inconclusive:
        return f"?{passed}/{total}"
    if passed == total:
        return f"ok {passed}/{total}"
    if all(not c.expected for c in cells):
        return f"n/a {passed}/{total}"
    return f"FAIL {passed}/{total}"


def _monitor_summary(cells: List[MatrixCell]) -> str:
    """Per-criterion streaming-monitor verdicts, seeds aggregated."""
    verdicts: Dict[str, List[Optional[bool]]] = {}
    for cell in cells:
        if not cell.streaming:
            continue
        for criterion, verdict in cell.streaming["criteria"].items():
            verdicts.setdefault(criterion, []).append(verdict["ok"])
    if not verdicts:
        return "-"
    parts = []
    for criterion, oks in sorted(verdicts.items()):
        if any(ok is False for ok in oks):
            tag = "no"
        elif any(ok is None for ok in oks):
            tag = "?"
        else:
            tag = "ok"
        parts.append(f"{criterion}={tag}")
    return " ".join(parts)


def format_matrix_report(report: MatrixReport) -> str:
    """One row per (scenario, algorithm), seeds aggregated."""
    groups: Dict[Tuple[str, str], List[MatrixCell]] = {}
    for cell in report.cells:
        groups.setdefault((cell.scenario, cell.algorithm), []).append(cell)
    monitored = any(cell.streaming for cell in report.cells)
    rows = []
    for (scenario, algorithm), cells in groups.items():
        blocked = sum(c.blocked for c in cells)
        latency = sum(c.mean_latency for c in cells) / len(cells)
        messages = sum(c.messages_per_op for c in cells) / len(cells)
        wall = sum(c.wall_seconds for c in cells)
        row = [
            scenario,
            algorithm,
            cells[0].criterion,
            _verdict(cells),
        ]
        if monitored:
            row.append(_monitor_summary(cells))
        row.extend(
            [
                "yes" if blocked == 0 else f"no ({blocked} blocked)",
                f"{latency:.2f}",
                f"{messages:.1f}",
                f"{wall:.2f}s",
            ]
        )
        rows.append(row)
    header = [
        "scenario",
        "algorithm",
        "criterion",
        "verdict",
    ]
    if monitored:
        header.append("monitor")
    header.extend(["available", "latency", "msg/op", "wall"])
    table = render_table(header, rows)
    lines = [table, ""]
    lines.append(
        f"cells: {len(report.cells)}, failures: {len(report.failures)}, "
        f"inconclusive: {len(report.inconclusive)}"
    )
    flagged = report.non_wait_free_flagged()
    if flagged:
        combos = sorted({(c.scenario, c.algorithm) for c in flagged})
        lines.append(
            "non-wait-free behaviour flagged (blocked ops or delay-bound "
            "latency): "
            + ", ".join(f"{a} on {s}" for s, a in combos)
        )
    return "\n".join(lines)
