"""Grow-only set ADT.

A commutative object (the order of ``add``s is irrelevant): the simplest
data type for which weak causal consistency and causal convergence
coincide on update order, used by the property-based tests to check that
the criteria collapse as expected on commutative updates.
"""

from __future__ import annotations

from typing import Any, FrozenSet

from ..core.adt import AbstractDataType, State
from ..core.operations import BOTTOM, Invocation, Operation


class GrowSet(AbstractDataType):
    """A set supporting ``add(v)``, ``contains(v)`` and ``snapshot``."""

    name = "GrowSet"

    def initial_state(self) -> State:
        return frozenset()

    def transition(self, state: State, invocation: Invocation) -> State:
        if invocation.method == "add":
            (value,) = invocation.args
            return state | {value}
        if invocation.method in ("contains", "snapshot"):
            return state
        raise ValueError(f"GrowSet has no method {invocation.method!r}")

    def output(self, state: State, invocation: Invocation) -> Any:
        if invocation.method == "add":
            return BOTTOM
        if invocation.method == "contains":
            (value,) = invocation.args
            return value in state
        if invocation.method == "snapshot":
            return state
        raise ValueError(f"GrowSet has no method {invocation.method!r}")

    def is_update(self, invocation: Invocation) -> bool:
        return invocation.method == "add"

    def is_query(self, invocation: Invocation) -> bool:
        return invocation.method in ("contains", "snapshot")

    # convenience constructors -----------------------------------------
    def add(self, value: Any) -> Operation:
        return Operation(Invocation("add", (value,)), BOTTOM)

    def contains(self, value: Any, answer: bool) -> Operation:
        return Operation(Invocation("contains", (value,)), answer)

    def snapshot(self, *values: Any) -> Operation:
        return Operation(Invocation("snapshot"), frozenset(values))
