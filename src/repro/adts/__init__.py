"""Concrete abstract data types used throughout the paper."""

from .counter import Counter
from .gset import GrowSet
from .memory import MemoryADT
from .product import ProductADT
from .queue import FifoQueue, SplitQueue
from .register import Register
from .sequence import EditSequence
from .stack import Stack
from .window_stream import WindowStream, WindowStreamArray

__all__ = [
    "Counter",
    "GrowSet",
    "MemoryADT",
    "ProductADT",
    "FifoQueue",
    "SplitQueue",
    "Register",
    "EditSequence",
    "Stack",
    "WindowStream",
    "WindowStreamArray",
]
