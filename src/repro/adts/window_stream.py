"""The window stream ADT ``W_k`` (Def. 3) and arrays thereof.

A window stream of size ``k`` generalises a register: ``w(v)`` appends a
value, ``r`` returns the sequence of the last ``k`` written values (missing
values replaced by the default).  ``W_1`` is an integer register.  A window
stream of size ``k`` has consensus number ``k`` (Sec. 2.1), which
:mod:`repro.analysis.consensus` demonstrates experimentally.

``WindowStreamArray`` is the array of ``K`` window streams of size ``k``
implemented by the algorithms of Figs. 4 and 5.
"""

from __future__ import annotations

from typing import Any, Tuple

from ..core.adt import AbstractDataType, State
from ..core.operations import BOTTOM, Invocation, Operation


class WindowStream(AbstractDataType):
    """``W_k``: ``w(v)`` shifts the window, ``r`` returns it (Def. 3).

    State: a ``k``-tuple ``(q_1, ..., q_k)``, oldest value first.
    ``delta(q, w(v)) = (q_2, ..., q_k, v)``; ``lambda(q, r) = q``.
    """

    def __init__(self, k: int, default: Any = 0) -> None:
        if k < 1:
            raise ValueError("window size must be >= 1")
        self.k = k
        self.default = default
        self.name = f"W_{k}"

    def initial_state(self) -> State:
        return (self.default,) * self.k

    def transition(self, state: State, invocation: Invocation) -> State:
        if invocation.method == "w":
            (value,) = invocation.args
            return state[1:] + (value,)
        if invocation.method == "r":
            return state
        raise ValueError(f"{self.name} has no method {invocation.method!r}")

    def output(self, state: State, invocation: Invocation) -> Any:
        if invocation.method == "w":
            return BOTTOM
        if invocation.method == "r":
            return state if self.k > 1 else state  # full window
        raise ValueError(f"{self.name} has no method {invocation.method!r}")

    def is_update(self, invocation: Invocation) -> bool:
        return invocation.method == "w"

    def is_query(self, invocation: Invocation) -> bool:
        return invocation.method == "r"

    # convenience constructors -----------------------------------------
    def write(self, value: Any) -> Operation:
        """The hidden operation ``w(v)`` (dummy output ignored)."""
        return Operation(Invocation("w", (value,)), BOTTOM)

    def read(self, *window: Any) -> Operation:
        """The operation ``r/(v_1, ..., v_k)``."""
        if len(window) != self.k:
            raise ValueError(f"read of {self.name} returns {self.k} values")
        return Operation(Invocation("r"), tuple(window))


class WindowStreamArray(AbstractDataType):
    """An array of ``K`` window streams of size ``k`` (Sec. 6).

    Methods: ``w(x, v)`` writes ``v`` to stream ``x``; ``r(x)`` reads the
    window of stream ``x``.  This is the object implemented by the
    algorithms of Fig. 4 (causal consistency) and Fig. 5 (causal
    convergence).
    """

    def __init__(self, streams: int, k: int, default: Any = 0) -> None:
        if streams < 1 or k < 1:
            raise ValueError("need at least one stream of size >= 1")
        self.streams = streams
        self.k = k
        self.default = default
        self.name = f"W_{k}^{streams}"

    def initial_state(self) -> State:
        return ((self.default,) * self.k,) * self.streams

    def _check_stream(self, x: int) -> None:
        if not (0 <= x < self.streams):
            raise ValueError(f"stream index {x} out of [0, {self.streams})")

    def transition(self, state: State, invocation: Invocation) -> State:
        if invocation.method == "w":
            x, value = invocation.args
            self._check_stream(x)
            row = state[x][1:] + (value,)
            return state[:x] + (row,) + state[x + 1 :]
        if invocation.method == "r":
            return state
        raise ValueError(f"{self.name} has no method {invocation.method!r}")

    def output(self, state: State, invocation: Invocation) -> Any:
        if invocation.method == "w":
            return BOTTOM
        if invocation.method == "r":
            (x,) = invocation.args
            self._check_stream(x)
            return state[x]
        raise ValueError(f"{self.name} has no method {invocation.method!r}")

    def is_update(self, invocation: Invocation) -> bool:
        return invocation.method == "w"

    def is_query(self, invocation: Invocation) -> bool:
        return invocation.method == "r"

    # convenience constructors -----------------------------------------
    def write(self, x: int, value: Any) -> Operation:
        return Operation(Invocation("w", (x, value)), BOTTOM)

    def read(self, x: int, *window: Any) -> Operation:
        if len(window) != self.k:
            raise ValueError(f"read returns {self.k} values")
        return Operation(Invocation("r", (x,)), tuple(window))
