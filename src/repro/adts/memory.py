"""The memory ADT ``M_X`` (Def. 10): a pool of integer registers.

Causal consistency is *not composable*, so a causal memory is a causally
consistent *pool of registers*, not a pool of causally consistent registers
(Sec. 4.2).  ``M_X`` has methods ``w(x, v)`` (write ``v`` to register
``x``, output ``⊥``) and ``r(x)`` (read register ``x``); unwritten
registers hold the default value 0.

This module also carries the memory-specific introspection (which
invocation writes/reads which register) used by the causal-memory checker
(Def. 11) and the session-guarantee checkers of Terry et al. [24].
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from ..core.adt import AbstractDataType, State
from ..core.operations import BOTTOM, HIDDEN, Invocation, Operation


class MemoryADT(AbstractDataType):
    """``M_X`` over a finite set of register names.

    The state is a tuple of values indexed by the declared register order;
    the paper allows any countable ``X``, of which any finite execution
    touches a finite subset, so declaring the registers up front loses no
    generality for checking.
    """

    def __init__(self, registers: Sequence[Any] = "abcdefghijklmnopqrstuvwxyz",
                 default: Any = 0) -> None:
        names = list(registers)
        if len(set(names)) != len(names):
            raise ValueError("duplicate register names")
        if not names:
            raise ValueError("memory needs at least one register")
        self.registers = tuple(names)
        self.index: Dict[Any, int] = {x: i for i, x in enumerate(names)}
        self.default = default
        self.name = f"Memory[{len(names)}]"

    def initial_state(self) -> State:
        return (self.default,) * len(self.registers)

    def _reg(self, x: Any) -> int:
        try:
            return self.index[x]
        except KeyError:
            raise ValueError(f"unknown register {x!r}") from None

    def transition(self, state: State, invocation: Invocation) -> State:
        if invocation.method == "w":
            x, value = invocation.args
            i = self._reg(x)
            return state[:i] + (value,) + state[i + 1 :]
        if invocation.method == "r":
            return state
        raise ValueError(f"{self.name} has no method {invocation.method!r}")

    def output(self, state: State, invocation: Invocation) -> Any:
        if invocation.method == "w":
            return BOTTOM
        if invocation.method == "r":
            (x,) = invocation.args
            return state[self._reg(x)]
        raise ValueError(f"{self.name} has no method {invocation.method!r}")

    def is_update(self, invocation: Invocation) -> bool:
        return invocation.method == "w"

    def is_query(self, invocation: Invocation) -> bool:
        return invocation.method == "r"

    # ------------------------------------------------------------------
    # Memory-specific introspection (used by CM / session checkers)
    # ------------------------------------------------------------------
    def write_target(self, invocation: Invocation) -> Optional[Tuple[Any, Any]]:
        """``(register, value)`` when the invocation is a write, else None."""
        if invocation.method == "w":
            return invocation.args[0], invocation.args[1]
        return None

    def read_target(self, invocation: Invocation) -> Optional[Any]:
        """The register read by the invocation, else None."""
        if invocation.method == "r":
            return invocation.args[0]
        return None

    # convenience constructors -----------------------------------------
    def write(self, x: Any, value: Any) -> Operation:
        return Operation(Invocation("w", (x, value)), BOTTOM)

    def read(self, x: Any, value: Any = HIDDEN) -> Operation:
        return Operation(Invocation("r", (x,)), value)


def project_register(history, adt: "MemoryADT", register: Any):
    """Project a memory history onto one register.

    Returns the history of the events touching ``register`` only, relabelled
    on the single-register alphabet (``w(v)`` / ``r``), with the program
    order restricted per process.  Used to demonstrate that causal
    consistency is *not composable* (Sec. 4.2): each register's projection
    can be causally consistent while the memory history is not —
    which is why Def. 10 defines causal memory as a causally consistent
    pool of registers rather than a pool of causally consistent registers.
    """
    from ..core.history import History

    rows: dict = {}
    for event in history:
        target = adt.write_target(event.invocation)
        source = adt.read_target(event.invocation)
        if target is not None and target[0] == register:
            rows.setdefault(event.process, []).append(
                Operation(Invocation("w", (target[1],)), event.output)
            )
        elif source == register:
            rows.setdefault(event.process, []).append(
                Operation(Invocation("r"), event.output)
            )
    return History.from_processes([rows[p] for p in sorted(rows)])
