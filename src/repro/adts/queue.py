"""FIFO queues: the combined queue ``Q`` and the split queue ``Q'``.

Sec. 4.1 uses two queue flavours to show that weakly consistent criteria
decouple the transition and output parts of an operation:

- ``FifoQueue`` (``Q``): ``push(v)`` is a pure update; ``pop`` removes and
  returns the head — both an update and a query.  Under causal consistency
  an element may be popped twice, or never (Fig. 3f).
- ``SplitQueue`` (``Q'``): ``pop`` is split into the pure query ``hd``
  (read the head) and the pure update ``rh(v)`` (remove the head iff it
  equals ``v``), which guarantees every value is read at least once
  (Fig. 3g).

Empty-queue reads return ``BOTTOM`` (the paper's ``⊥``).
"""

from __future__ import annotations

from typing import Any, Tuple

from ..core.adt import AbstractDataType, State
from ..core.operations import BOTTOM, Invocation, Operation


class FifoQueue(AbstractDataType):
    """``Q``: push/pop FIFO queue; state is the tuple of queued values."""

    name = "Queue"

    def initial_state(self) -> State:
        return ()

    def transition(self, state: State, invocation: Invocation) -> State:
        if invocation.method == "push":
            (value,) = invocation.args
            return state + (value,)
        if invocation.method == "pop":
            return state[1:] if state else state
        raise ValueError(f"Queue has no method {invocation.method!r}")

    def output(self, state: State, invocation: Invocation) -> Any:
        if invocation.method == "push":
            return BOTTOM
        if invocation.method == "pop":
            return state[0] if state else BOTTOM
        raise ValueError(f"Queue has no method {invocation.method!r}")

    def is_update(self, invocation: Invocation) -> bool:
        return invocation.method in ("push", "pop")

    def is_query(self, invocation: Invocation) -> bool:
        return invocation.method == "pop"

    # convenience constructors -----------------------------------------
    def push(self, value: Any) -> Operation:
        return Operation(Invocation("push", (value,)), BOTTOM)

    def pop(self, value: Any = BOTTOM) -> Operation:
        return Operation(Invocation("pop"), value)


class SplitQueue(AbstractDataType):
    """``Q'``: the queue with ``pop`` split into ``hd`` and ``rh(v)``.

    ``hd`` returns the head without removing it (pure query); ``rh(v)``
    removes the head if and only if it equals ``v`` (pure update).  This
    loose coupling lets causally consistent processes cooperate without
    ever losing an element unread (Sec. 4.1, Fig. 3g).
    """

    name = "SplitQueue"

    def initial_state(self) -> State:
        return ()

    def transition(self, state: State, invocation: Invocation) -> State:
        if invocation.method == "push":
            (value,) = invocation.args
            return state + (value,)
        if invocation.method == "rh":
            (value,) = invocation.args
            if state and state[0] == value:
                return state[1:]
            return state
        if invocation.method == "hd":
            return state
        raise ValueError(f"SplitQueue has no method {invocation.method!r}")

    def output(self, state: State, invocation: Invocation) -> Any:
        if invocation.method in ("push", "rh"):
            return BOTTOM
        if invocation.method == "hd":
            return state[0] if state else BOTTOM
        raise ValueError(f"SplitQueue has no method {invocation.method!r}")

    def is_update(self, invocation: Invocation) -> bool:
        return invocation.method in ("push", "rh")

    def is_query(self, invocation: Invocation) -> bool:
        return invocation.method == "hd"

    # convenience constructors -----------------------------------------
    def push(self, value: Any) -> Operation:
        return Operation(Invocation("push", (value,)), BOTTOM)

    def hd(self, value: Any = BOTTOM) -> Operation:
        return Operation(Invocation("hd"), value)

    def rh(self, value: Any) -> Operation:
        return Operation(Invocation("rh", (value,)), BOTTOM)
