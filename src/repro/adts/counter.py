"""Shared counter ADT.

The introduction of the paper motivates "beyond memory" with counters: the
value returned by a counter read depends on *all* increments in its past,
not on a single most-recent write.  ``inc(d)`` is a pure update, ``read``
a pure query, and ``fetch_inc`` (increment and return the previous value)
is both — useful to exercise the update+query code paths of the checkers
on a commutative object.
"""

from __future__ import annotations

from typing import Any

from ..core.adt import AbstractDataType, State
from ..core.operations import BOTTOM, Invocation, Operation


class Counter(AbstractDataType):
    """An integer counter starting at 0."""

    name = "Counter"

    def initial_state(self) -> State:
        return 0

    def transition(self, state: State, invocation: Invocation) -> State:
        if invocation.method == "inc":
            delta = invocation.args[0] if invocation.args else 1
            return state + delta
        if invocation.method == "fetch_inc":
            return state + 1
        if invocation.method == "read":
            return state
        raise ValueError(f"Counter has no method {invocation.method!r}")

    def output(self, state: State, invocation: Invocation) -> Any:
        if invocation.method == "inc":
            return BOTTOM
        if invocation.method == "fetch_inc":
            return state
        if invocation.method == "read":
            return state
        raise ValueError(f"Counter has no method {invocation.method!r}")

    def is_update(self, invocation: Invocation) -> bool:
        if invocation.method == "inc":
            delta = invocation.args[0] if invocation.args else 1
            return delta != 0
        return invocation.method == "fetch_inc"

    def is_query(self, invocation: Invocation) -> bool:
        return invocation.method in ("read", "fetch_inc")

    # convenience constructors -----------------------------------------
    def inc(self, delta: int = 1) -> Operation:
        return Operation(Invocation("inc", (delta,)), BOTTOM)

    def read(self, value: int) -> Operation:
        return Operation(Invocation("read"), value)

    def fetch_inc(self, previous: int) -> Operation:
        return Operation(Invocation("fetch_inc"), previous)
