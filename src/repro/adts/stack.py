"""Stack ADT (LIFO), used in the paper's examples of Sec. 2.1.

``push(v)`` is a pure update; ``pop`` deletes the head and returns its
value (update + query, the paper's canonical mixed operation); ``top`` is
the pure query companion.  A stack has consensus number 2 (Sec. 2.1).
"""

from __future__ import annotations

from typing import Any

from ..core.adt import AbstractDataType, State
from ..core.operations import BOTTOM, Invocation, Operation


class Stack(AbstractDataType):
    """A LIFO stack; state is a tuple with the top at the end."""

    name = "Stack"

    def initial_state(self) -> State:
        return ()

    def transition(self, state: State, invocation: Invocation) -> State:
        if invocation.method == "push":
            (value,) = invocation.args
            return state + (value,)
        if invocation.method == "pop":
            return state[:-1] if state else state
        if invocation.method == "top":
            return state
        raise ValueError(f"Stack has no method {invocation.method!r}")

    def output(self, state: State, invocation: Invocation) -> Any:
        if invocation.method == "push":
            return BOTTOM
        if invocation.method == "pop":
            return state[-1] if state else BOTTOM
        if invocation.method == "top":
            return state[-1] if state else BOTTOM
        raise ValueError(f"Stack has no method {invocation.method!r}")

    def is_update(self, invocation: Invocation) -> bool:
        return invocation.method in ("push", "pop")

    def is_query(self, invocation: Invocation) -> bool:
        return invocation.method in ("pop", "top")

    # convenience constructors -----------------------------------------
    def push(self, value: Any) -> Operation:
        return Operation(Invocation("push", (value,)), BOTTOM)

    def pop(self, value: Any = BOTTOM) -> Operation:
        return Operation(Invocation("pop"), value)

    def top(self, value: Any = BOTTOM) -> Operation:
        return Operation(Invocation("top"), value)
