"""Shared editable sequence (collaborative-editing document).

The paper motivates weak causal consistency with the CCI model of
collaborative editing [23] (convergence + causality + intention
preservation).  ``EditSequence`` is the sequential specification of such a
document: ``insert(pos, ch)`` and ``delete(pos)`` are pure updates (with
positions clamped to the current length, keeping ``delta`` total as Def. 1
requires), ``read`` is a pure query returning the document.

Used by ``examples/collaborative_editing.py`` together with the generic
causal-convergence replication of :mod:`repro.algorithms.generic_ccv`.
"""

from __future__ import annotations

from typing import Any

from ..core.adt import AbstractDataType, State
from ..core.operations import BOTTOM, Invocation, Operation


class EditSequence(AbstractDataType):
    """A text document as a tuple of characters."""

    name = "EditSequence"

    def initial_state(self) -> State:
        return ()

    def transition(self, state: State, invocation: Invocation) -> State:
        if invocation.method == "insert":
            pos, ch = invocation.args
            pos = max(0, min(int(pos), len(state)))
            return state[:pos] + (ch,) + state[pos:]
        if invocation.method == "delete":
            (pos,) = invocation.args
            if 0 <= pos < len(state):
                return state[:pos] + state[pos + 1 :]
            return state
        if invocation.method == "read":
            return state
        raise ValueError(f"EditSequence has no method {invocation.method!r}")

    def output(self, state: State, invocation: Invocation) -> Any:
        if invocation.method in ("insert", "delete"):
            return BOTTOM
        if invocation.method == "read":
            return "".join(str(c) for c in state)
        raise ValueError(f"EditSequence has no method {invocation.method!r}")

    def is_update(self, invocation: Invocation) -> bool:
        return invocation.method in ("insert", "delete")

    def is_query(self, invocation: Invocation) -> bool:
        return invocation.method == "read"

    # convenience constructors -----------------------------------------
    def insert(self, pos: int, ch: Any) -> Operation:
        return Operation(Invocation("insert", (pos, ch)), BOTTOM)

    def delete(self, pos: int) -> Operation:
        return Operation(Invocation("delete", (pos,)), BOTTOM)

    def read(self, text: str) -> Operation:
        return Operation(Invocation("read"), text)
