"""Integer register: a window stream of size 1 with scalar reads.

The paper defines a register as "isomorphic to a window stream of size 1"
(Sec. 4.2); this class exposes the conventional scalar interface ``w(v)``
/ ``r -> v`` used by the memory ADT and the session-guarantee checkers.
"""

from __future__ import annotations

from typing import Any

from ..core.adt import AbstractDataType, State
from ..core.operations import BOTTOM, Invocation, Operation


class Register(AbstractDataType):
    """A single read/write register with default value 0."""

    def __init__(self, default: Any = 0) -> None:
        self.default = default
        self.name = "Register"

    def initial_state(self) -> State:
        return self.default

    def transition(self, state: State, invocation: Invocation) -> State:
        if invocation.method == "w":
            (value,) = invocation.args
            return value
        if invocation.method == "r":
            return state
        raise ValueError(f"Register has no method {invocation.method!r}")

    def output(self, state: State, invocation: Invocation) -> Any:
        if invocation.method == "w":
            return BOTTOM
        if invocation.method == "r":
            return state
        raise ValueError(f"Register has no method {invocation.method!r}")

    def is_update(self, invocation: Invocation) -> bool:
        return invocation.method == "w"

    def is_query(self, invocation: Invocation) -> bool:
        return invocation.method == "r"

    def write(self, value: Any) -> Operation:
        return Operation(Invocation("w", (value,)), BOTTOM)

    def read(self, value: Any) -> Operation:
        return Operation(Invocation("r"), value)
