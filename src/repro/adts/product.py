"""Product ADTs — composing shared objects into one specification.

Causal consistency is *not composable* (Sec. 4.2): the product of two
causally consistent registers is not a causally consistent register pair.
To even state that, one needs the product as a single ADT — this module
builds it.  ``ProductADT({"x": Register(), "q": FifoQueue()})`` is the
transducer whose state is the tuple of component states and whose methods
are the components' methods prefixed with the component name
(``"x.w"``, ``"q.pop"``, ...).

``MemoryADT`` is (isomorphic to) the product of one register per name —
property-tested in ``tests/test_product.py`` — and the non-composability
witness of ``tests/test_composability.py`` can be replayed through this
class with any component types.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

from ..core.adt import AbstractDataType, State
from ..core.operations import Invocation, Operation


class ProductADT(AbstractDataType):
    """The product of named component ADTs."""

    def __init__(self, components: Mapping[str, AbstractDataType]) -> None:
        if not components:
            raise ValueError("a product needs at least one component")
        for name in components:
            if "." in name:
                raise ValueError(f"component name {name!r} may not contain '.'")
        self.components: Dict[str, AbstractDataType] = dict(components)
        self.order = tuple(sorted(self.components))
        self.index = {name: i for i, name in enumerate(self.order)}
        inner = ",".join(
            f"{name}:{self.components[name].name}" for name in self.order
        )
        self.name = f"Product[{inner}]"

    # ------------------------------------------------------------------
    def _split(self, invocation: Invocation) -> Tuple[str, Invocation]:
        method = invocation.method
        if "." not in method:
            raise ValueError(
                f"product methods are '<component>.<method>', got {method!r}"
            )
        name, inner_method = method.split(".", 1)
        if name not in self.components:
            known = ", ".join(self.order)
            raise ValueError(f"unknown component {name!r}; known: {known}")
        return name, Invocation(inner_method, invocation.args)

    def lift(self, name: str, operation: Operation) -> Operation:
        """Lift a component operation into the product alphabet."""
        if name not in self.components:
            raise ValueError(f"unknown component {name!r}")
        invocation = Invocation(
            f"{name}.{operation.invocation.method}", operation.invocation.args
        )
        return Operation(invocation, operation.output)

    # ------------------------------------------------------------------
    def initial_state(self) -> State:
        return tuple(self.components[name].initial_state() for name in self.order)

    def transition(self, state: State, invocation: Invocation) -> State:
        name, inner = self._split(invocation)
        i = self.index[name]
        new_component = self.components[name].transition(state[i], inner)
        return state[:i] + (new_component,) + state[i + 1 :]

    def output(self, state: State, invocation: Invocation) -> Any:
        name, inner = self._split(invocation)
        return self.components[name].output(state[self.index[name]], inner)

    def is_update(self, invocation: Invocation) -> bool:
        name, inner = self._split(invocation)
        return self.components[name].is_update(inner)

    def is_query(self, invocation: Invocation) -> bool:
        name, inner = self._split(invocation)
        return self.components[name].is_query(inner)
