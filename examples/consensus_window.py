#!/usr/bin/env python
"""The consensus number of a window stream is k (Sec. 2.1).

The paper's protocol: each of n processes writes its proposal into a
sequentially consistent window stream of size k, reads the window, and
decides the *oldest* non-default value.  With n <= k the first proposal
can never have been shifted out of the window — everyone decides it.
With n = k + 1 there are schedules where a late reader has lost the first
value: agreement breaks exactly at the consensus-number boundary.
"""

from repro.analysis import consensus_matrix, format_matrix, window_consensus


def main() -> None:
    print("single runs:")
    for n, k in ((2, 2), (3, 2)):
        run = window_consensus(n, k, seed=7)
        print(f"  n={n} proposers, W_{k}: decisions={run.decisions}  "
              f"{'AGREED' if run.agreed else 'DISAGREED'}")

    print("\nagreement rates over 25 seeds (expected: 1.00 iff n <= k):\n")
    rates = consensus_matrix(max_n=5, max_k=4, runs=25, seed=1)
    print(format_matrix(rates))
    for (n, k), rate in rates.items():
        if n <= k:
            assert rate == 1.0
    print("\nthe boundary sits exactly at n = k: W_k has consensus number k.")


if __name__ == "__main__":
    main()
