#!/usr/bin/env python
"""Quickstart: specify an object, check histories, run an algorithm.

Walks through the three layers of the library on the paper's guideline
example, the window stream W_2 (Def. 3):

1. sequential specification — replaying words on the transducer;
2. consistency criteria — classifying the history of Fig. 3d;
3. replication — running the causally consistent algorithm of Fig. 4 on
   the simulated asynchronous system and model-checking the run.
"""

from repro import History, WindowStream, check
from repro.algorithms import CCWindowArray
from repro.adts import WindowStreamArray
from repro.analysis.harness import run_workload
from repro.core import accepts, inv
from repro.criteria import verify_certificate


def sequential_specification() -> None:
    print("=== 1. the sequential specification L(W_2) ===")
    w2 = WindowStream(2)
    word = [w2.write(1), w2.read(0, 1), w2.write(2), w2.read(1, 2)]
    print(f"  word  : {word}")
    print(f"  in L? : {accepts(w2, word)}")
    bad = [w2.write(1), w2.read(9, 9)]
    print(f"  word  : {bad}")
    print(f"  in L? : {accepts(w2, bad)}")


def consistency_criteria() -> None:
    print("\n=== 2. classifying a distributed history (Fig. 3d) ===")
    w2 = WindowStream(2)
    history = History.from_processes(
        [
            [w2.write(1), w2.read(0, 1)],
            [w2.write(2), w2.read(1, 2)],
        ]
    )
    print(f"  history: {history}")
    for criterion in ("SC", "CC", "CCV", "PC", "WCC"):
        result = check(history, w2, criterion)
        print(f"  {criterion:4s}: {'yes' if result.ok else 'no'}")


def replication() -> None:
    print("\n=== 3. running the Fig. 4 algorithm (3 processes) ===")
    scripts = [
        [inv("w", 0, 10 + pid), inv("r", 0), inv("r", 0)] for pid in range(3)
    ]
    result = run_workload(CCWindowArray, 3, scripts, seed=1, streams=1, k=2)
    print(f"  observed history: {result.history}")
    print(f"  operations      : {result.ops}, "
          f"mean latency {result.mean_latency} (wait-free!)")
    adt = WindowStreamArray(1, 2)
    verdict = check(result.history, adt, "CC")
    print(f"  causally consistent? {verdict.ok}")
    verify_certificate(result.history, adt, verdict.certificate)
    print("  certificate independently verified.")


if __name__ == "__main__":
    sequential_specification()
    consistency_criteria()
    replication()
