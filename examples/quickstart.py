#!/usr/bin/env python
"""Quickstart: specify an object, check histories, run an algorithm.

Walks through the four layers of the library on the paper's guideline
example, the window stream W_2 (Def. 3):

1. sequential specification — replaying words on the transducer;
2. consistency criteria — classifying the history of Fig. 3d;
3. replication — running the causally consistent algorithm of Fig. 4 on
   the simulated asynchronous system and model-checking the run;
4. scenarios — the same run specified declaratively, with a network
   partition thrown mid-run (``python -m repro explore`` sweeps the full
   scenario × algorithm matrix).
"""

from repro import History, WindowStream, check
from repro.algorithms import CCWindowArray
from repro.adts import WindowStreamArray
from repro.analysis.harness import run_workload
from repro.core import accepts, inv
from repro.criteria import verify_certificate
from repro.scenarios import (
    FaultEvent,
    Scenario,
    ScenarioSpec,
    WorkloadSpec,
)


def sequential_specification() -> None:
    print("=== 1. the sequential specification L(W_2) ===")
    w2 = WindowStream(2)
    word = [w2.write(1), w2.read(0, 1), w2.write(2), w2.read(1, 2)]
    print(f"  word  : {word}")
    print(f"  in L? : {accepts(w2, word)}")
    bad = [w2.write(1), w2.read(9, 9)]
    print(f"  word  : {bad}")
    print(f"  in L? : {accepts(w2, bad)}")


def consistency_criteria() -> None:
    print("\n=== 2. classifying a distributed history (Fig. 3d) ===")
    w2 = WindowStream(2)
    history = History.from_processes(
        [
            [w2.write(1), w2.read(0, 1)],
            [w2.write(2), w2.read(1, 2)],
        ]
    )
    print(f"  history: {history}")
    for criterion in ("SC", "CC", "CCV", "PC", "WCC"):
        result = check(history, w2, criterion)
        print(f"  {criterion:4s}: {'yes' if result.ok else 'no'}")


def replication() -> None:
    print("\n=== 3. running the Fig. 4 algorithm (3 processes) ===")
    scripts = [
        [inv("w", 0, 10 + pid), inv("r", 0), inv("r", 0)] for pid in range(3)
    ]
    result = run_workload(CCWindowArray, 3, scripts, seed=1, streams=1, k=2)
    print(f"  observed history: {result.history}")
    print(f"  operations      : {result.ops}, "
          f"mean latency {result.mean_latency} (wait-free!)")
    adt = WindowStreamArray(1, 2)
    verdict = check(result.history, adt, "CC")
    print(f"  causally consistent? {verdict.ok}")
    verify_certificate(result.history, adt, verdict.certificate)
    print("  certificate independently verified.")


def scenarios() -> None:
    print("\n=== 4. a declarative fault scenario ===")
    spec = ScenarioSpec(
        name="quickstart-partition",
        n=3,
        streams=1,
        faults=(
            FaultEvent.partition(1.0, (0, 1), (2,)),
            FaultEvent.heal(6.0),
        ),
        workload=WorkloadSpec(ops_per_process=4, write_ratio=0.6),
    )
    print(f"  spec (JSON-round-trippable): {spec.name}")
    print(f"    faults   : {[f.action for f in spec.faults]}")
    scenario = Scenario(spec)
    result = scenario.run(CCWindowArray, seed=3, streams=1, k=2)
    print(f"  ops={result.ops}, blocked={result.blocked}, "
          f"mean latency {result.mean_latency} — available during the split")
    verdict = check(result.history, scenario.adt(), "CC")
    print(f"  causally consistent across the partition? {verdict.ok}")
    print("  (sweep every scenario x algorithm: python -m repro explore)")


if __name__ == "__main__":
    sequential_specification()
    consistency_criteria()
    replication()
    scenarios()
