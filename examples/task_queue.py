#!/usr/bin/env python
"""Distributed task queue: why the split queue Q' exists (Sec. 4.1).

Workers share a queue of tasks under causal consistency.  With the
combined ``pop`` (Fig. 3f), two workers popping concurrently can *lose a
task forever* (and process another twice).  The paper's split queue Q'
(``hd`` + conditional ``rh``) trades exactly-once for at-least-once:
every task is read by someone, duplicates are possible — the classic
at-least-once work queue, derived here from consistency criteria.

We run both designs over the generic causally consistent replication on
identical schedules and count lost/duplicated tasks.
"""

from repro.adts import FifoQueue, SplitQueue
from repro.algorithms import GenericCausal
from repro.core.operations import BOTTOM, Invocation
from repro.runtime import DelayModel, HistoryRecorder, Network, Simulator

TASKS = list(range(1, 7))
WORKERS = 2


def run_combined_pop(seed: int):
    """Workers pop the combined queue concurrently."""
    q = FifoQueue()
    sim = Simulator(seed=seed)
    net = Network(sim, WORKERS + 1, delay=DelayModel.uniform(0.5, 6.0))
    obj = GenericCausal(sim, net, HistoryRecorder(WORKERS + 1), adt=q)
    for task in TASKS:  # process 0 is the producer
        obj.invoke(0, Invocation("push", (task,)))
    done = []
    deadline = 80.0  # long after every message has settled

    def worker(pid: int) -> None:
        out = obj.invoke(pid, Invocation("pop"))
        if out is not BOTTOM:
            done.append(out)
        if sim.now < deadline:  # keep polling: tasks may still propagate
            sim.schedule(sim.rng.uniform(0.5, 2.0), lambda: worker(pid))

    for w in range(1, WORKERS + 1):
        sim.schedule(1.0, lambda pid=w: worker(pid))
    sim.run()
    return done


def run_split_queue(seed: int):
    """Workers use hd + rh(v): remove only what they actually saw."""
    q = SplitQueue()
    sim = Simulator(seed=seed)
    net = Network(sim, WORKERS + 1, delay=DelayModel.uniform(0.5, 6.0))
    obj = GenericCausal(sim, net, HistoryRecorder(WORKERS + 1), adt=q)
    for task in TASKS:
        obj.invoke(0, Invocation("push", (task,)))
    done = []
    deadline = 80.0

    def worker(pid: int) -> None:
        head = obj.invoke(pid, Invocation("hd"))
        if head is not BOTTOM:
            done.append(head)
            obj.invoke(pid, Invocation("rh", (head,)))
        if sim.now < deadline:
            sim.schedule(sim.rng.uniform(0.5, 2.0), lambda: worker(pid))

    for w in range(1, WORKERS + 1):
        sim.schedule(1.0, lambda pid=w: worker(pid))
    sim.run()
    return done


def main() -> None:
    lost_combined = dup_combined = 0
    lost_split = dup_split = 0
    runs = 30
    for seed in range(runs):
        for runner, counters in ((run_combined_pop, "combined"), (run_split_queue, "split")):
            processed = runner(seed)
            lost = len(set(TASKS) - set(processed))
            dups = len(processed) - len(set(processed))
            if counters == "combined":
                lost_combined += lost
                dup_combined += dups
            else:
                lost_split += lost
                dup_split += dups
    print(f"{runs} runs, {len(TASKS)} tasks each, {WORKERS} concurrent workers\n")
    print(f"  combined pop (Q, Fig. 3f): {lost_combined:3d} tasks lost, "
          f"{dup_combined:3d} duplicated")
    print(f"  split hd/rh (Q', Fig. 3g): {lost_split:3d} tasks lost, "
          f"{dup_split:3d} duplicated")
    assert lost_split == 0, "Q' must never lose a task"
    print("\nthe split queue never loses a task (at-least-once), exactly as")
    print("Sec. 4.1 argues: 'using this technique, all the values are read")
    print("at least once'.")


if __name__ == "__main__":
    main()
