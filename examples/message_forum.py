#!/usr/bin/env python
"""The question/answer forum — why causality matters (Sec. 3.2).

A user posts a *question*; another reads it and posts an *answer*; a third
user must never see the answer without the question (weak causal
consistency precludes exactly this).

We run the scenario over two replication strategies on identical
schedules:

- the eventually consistent LWW baseline (non-causal delivery), which
  produces the anomaly on some schedules, and
- the generic causally consistent algorithm (Fig. 4 generalised), which
  never does — and the observed histories confirm it via the exact WCC
  checker.
"""

from repro.adts import MemoryADT
from repro.algorithms import GenericCausal, LwwReplication
from repro.core.operations import Invocation
from repro.criteria import check
from repro.runtime import DelayModel, HistoryRecorder, Network, Simulator


def run_forum(algorithm_cls, seed: int):
    """One forum interaction; returns (observed history, anomaly?)."""
    mem = MemoryADT(("question", "answer"))
    sim = Simulator(seed=seed)
    network = Network(sim, 3, delay=DelayModel.uniform(0.5, 20.0))
    recorder = HistoryRecorder(3)
    forum = algorithm_cls(sim, network, recorder, adt=mem)

    # p0 posts the question immediately
    forum.invoke(0, Invocation("w", ("question", 1)))

    # p1 answers as soon as it has seen the question
    def try_answer() -> None:
        if forum.invoke(1, Invocation("r", ("question",))) == 1:
            forum.invoke(1, Invocation("w", ("answer", 2)))
        else:
            sim.schedule(1.0, try_answer)

    sim.schedule(1.0, try_answer)

    # p2 browses the forum a bit later: answer first, then question
    observed = {}

    def browse() -> None:
        observed["answer"] = forum.invoke(2, Invocation("r", ("answer",)))
        observed["question"] = forum.invoke(2, Invocation("r", ("question",)))

    sim.schedule(8.0, browse)
    sim.run()
    anomaly = observed.get("answer") == 2 and observed.get("question") == 0
    return recorder.to_history(), mem, anomaly


def main() -> None:
    print("question/answer forum over 40 random schedules\n")
    for name, cls in (("LWW (eventual)", LwwReplication),
                      ("causal (Fig. 4 generalised)", GenericCausal)):
        anomalies = 0
        wcc_violations = 0
        for seed in range(40):
            history, mem, anomaly = run_forum(cls, seed)
            if anomaly:
                anomalies += 1
                if not check(history, mem, "WCC").ok:
                    wcc_violations += 1
        print(f"  {name:30s}: {anomalies:2d}/40 schedules showed the "
              f"answer-without-question anomaly"
              + (f" ({wcc_violations} confirmed WCC violations)" if anomalies else ""))
    print("\nThe causal algorithm is anomaly-free by construction (Prop. 6);")
    print("the LWW baseline converges but cannot preserve causality.")


if __name__ == "__main__":
    main()
