#!/usr/bin/env python
"""Collaborative text editing under causal convergence (CCI model, [23]).

Three authors edit a shared document concurrently.  The paper presents
causal convergence (Sec. 5) as the criterion combining causality
preservation with convergence — precisely the C and C of the CCI model of
collaborative editing.  We replicate an :class:`EditSequence` with the
generic CCv algorithm: every replica applies the same Lamport-ordered
update log, so all authors converge to the *same* document, and causally
dependent edits (a fix typed after seeing a typo) are never reordered.
"""

from repro.adts import EditSequence
from repro.algorithms import GenericCCv
from repro.core.operations import Invocation
from repro.criteria import check
from repro.runtime import DelayModel, HistoryRecorder, Network, Simulator


def main() -> None:
    doc = EditSequence()
    sim = Simulator(seed=2026)
    network = Network(sim, 3, delay=DelayModel.uniform(0.5, 6.0))
    recorder = HistoryRecorder(3)
    shared = GenericCCv(sim, network, recorder, adt=doc)

    def type_text(pid: int, at: float, pos: int, text: str) -> None:
        def go() -> None:
            for offset, ch in enumerate(text):
                shared.invoke(pid, Invocation("insert", (pos + offset, ch)))
        sim.schedule(at, go)

    # author 0 writes the headline, authors 1 and 2 add words concurrently
    type_text(0, 0.0, 0, "causal")
    type_text(1, 0.5, 0, "beyond ")
    type_text(2, 1.0, 0, "memory ")

    # author 1 appends punctuation after having seen some of the others
    sim.schedule(
        15.0,
        lambda: shared.invoke(
            1, Invocation("insert", (len(shared.state_of(1)), "!"))
        ),
    )
    sim.run()

    print("final documents per author:")
    docs = []
    for pid in range(3):
        text = doc.output(shared.state_of(pid), Invocation("read"))
        docs.append(text)
        print(f"  author {pid}: {text!r}")
    assert len(set(docs)) == 1, "causal convergence guarantees agreement"
    print("\nall replicas converged to the same document (CCv).")

    history = recorder.to_history()
    verdict = check(history, doc, "WCC", max_nodes=500_000)
    print(f"observed history is weakly causally consistent: {verdict.ok}")


if __name__ == "__main__":
    main()
