#!/usr/bin/env python
"""The Fig. 3 litmus gallery: print every history, its paper caption, and
the classification computed by the exact checkers — the paper-vs-measured
table of experiment E3 in human-readable form."""

from repro.criteria import check
from repro.litmus import all_litmus

CRITERIA = ("SC", "CC", "CCV", "PC", "WCC", "CM")


def main() -> None:
    print(f"{'fig':4s} {'title':26s} " + " ".join(f"{c:>4s}" for c in CRITERIA))
    print("-" * 70)
    mismatches = 0
    for litmus in all_litmus():
        cells = []
        for criterion in CRITERIA:
            if criterion not in litmus.expected:
                cells.append("   -")
                continue
            got = check(litmus.history, litmus.adt, criterion).ok
            mark = "yes" if got else "no"
            if got != litmus.expected[criterion]:
                mark += "!"
                mismatches += 1
            cells.append(f"{mark:>4s}")
        print(f"{litmus.key:4s} {litmus.title:26s} " + " ".join(cells))
    print("-" * 70)
    print(f"mismatches vs verified classification: {mismatches} (expected 0)")
    print("\nhistories:")
    for litmus in all_litmus():
        print(f"  {litmus.key}: {litmus.history}")
        if litmus.notes:
            print(f"      note: {litmus.notes}")

    # why does 3b fail WCC? reproduce the paper's prose argument
    from repro.criteria import explain
    from repro.litmus import fig3b

    litmus = fig3b()
    print("\nwhy Fig. 3b is not weakly causally consistent:")
    print(explain(litmus.history, litmus.adt, "WCC").render(litmus.history))


if __name__ == "__main__":
    main()
