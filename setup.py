"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so PEP
517 editable installs (which build a wheel) fail; this shim lets
``pip install -e . --no-build-isolation`` fall back to ``setup.py develop``.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
