"""E6 — operation latency vs network delay: the cost of strong consistency.

Regenerates the motivating claim of Sec. 1 ([3], [16]): the weak-criteria
algorithms answer in 0 network time at every delay; the sequentially
consistent baseline pays a round trip that grows linearly with the delay.
"""

from repro.analysis import format_sweep, latency_sweep

from _util import emit

DELAYS = (0.5, 1.0, 2.0, 5.0, 10.0)


def test_latency_sweep(benchmark):
    points = benchmark.pedantic(
        lambda: latency_sweep(delays=DELAYS, ops_per_process=8, seed=2026),
        rounds=1,
        iterations=1,
    )
    emit("latency_vs_delay", format_sweep(points))
    wait_free = [p for p in points if "sequencer" not in p.algorithm]
    sequenced = [p for p in points if "sequencer" in p.algorithm]
    assert all(p.mean_latency == 0.0 for p in wait_free)
    # SC latency grows with delay (roughly linearly)
    by_delay = {p.mean_delay: p.mean_latency for p in sequenced}
    assert by_delay[10.0] > 5 * by_delay[1.0]
