"""E12 — checker scalability (ours, not the paper's).

The decision procedures are exact; this benchmark tracks how their cost
grows with history size so litmus-style users know the practical envelope
(Prop. 1-style structured histories stay cheap; adversarial concurrency
is exponential, as expected of an NP-hard problem).
"""

import random

import pytest

from repro.criteria import check
from repro.litmus.generators import random_window_history

SIZES = [(2, 2), (2, 3), (2, 4), (3, 3)]


def _population(processes, ops, count=6, seed=99):
    rng = random.Random(seed + processes * 10 + ops)
    return [
        random_window_history(rng, processes=processes, ops_per_process=ops)
        for _ in range(count)
    ]


@pytest.mark.parametrize("criterion", ["SC", "PC", "WCC", "CC", "CCV"])
@pytest.mark.parametrize("shape", SIZES, ids=[f"{p}x{o}" for p, o in SIZES])
def test_checker_scaling(benchmark, criterion, shape):
    processes, ops = shape
    population = _population(processes, ops)

    def run():
        return [
            check(h, adt, criterion, max_nodes=500_000).ok
            if criterion in ("WCC", "CC", "CCV")
            else check(h, adt, criterion).ok
            for h, adt in population
        ]

    benchmark(run)


def test_certificate_verification_cheap(benchmark):
    """Verifying a certificate must be far cheaper than searching for it."""
    from repro.criteria import verify_certificate

    rng = random.Random(5)
    cases = []
    while len(cases) < 5:
        h, adt = random_window_history(rng, processes=2, ops_per_process=3)
        result = check(h, adt, "CC")
        if result.ok:
            cases.append((h, adt, result.certificate))

    def verify_all():
        for h, adt, cert in cases:
            verify_certificate(h, adt, cert)

    benchmark(verify_all)
