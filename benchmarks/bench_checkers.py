"""E12 — checker scalability (ours, not the paper's).

The decision procedures are exact; this benchmark tracks how their cost
grows with history size so litmus-style users know the practical envelope
(Prop. 1-style structured histories stay cheap; adversarial concurrency
is exponential, as expected of an NP-hard problem).
"""

import random

import pytest

from repro.criteria import check
from repro.litmus.generators import random_window_history

from _util import emit

SIZES = [(2, 2), (2, 3), (2, 4), (3, 3)]


def _population(processes, ops, count=6, seed=99):
    rng = random.Random(seed + processes * 10 + ops)
    return [
        random_window_history(rng, processes=processes, ops_per_process=ops)
        for _ in range(count)
    ]


@pytest.mark.parametrize("criterion", ["SC", "PC", "WCC", "CC", "CCV"])
@pytest.mark.parametrize("shape", SIZES, ids=[f"{p}x{o}" for p, o in SIZES])
def test_checker_scaling(benchmark, criterion, shape):
    processes, ops = shape
    population = _population(processes, ops)

    def run():
        return [
            check(h, adt, criterion, max_nodes=500_000).ok
            if criterion in ("WCC", "CC", "CCV")
            else check(h, adt, criterion).ok
            for h, adt in population
        ]

    benchmark(run)


def test_search_work_counters():
    """Emit the causal-search work profile (families, checks, memo hits,
    propagation steps, pruned orders) over the population — the cheap
    companion to ``bench_search_scaling.py`` for eyeballing where the
    engine spends its effort."""
    keys = (
        "families",
        "event_checks",
        "lin_nodes",
        "memo_hits",
        "propagate_steps",
        "total_orders",
        "orders_pruned",
        "conflict_cuts",
        "shards",
    )
    lines = ["criterion  " + "  ".join(f"{k:>15s}" for k in keys)]
    for criterion in ("WCC", "CC", "CCV"):
        totals = dict.fromkeys(keys, 0)
        for processes, ops in SIZES:
            for h, adt in _population(processes, ops):
                result = check(h, adt, criterion, max_nodes=500_000)
                for key in keys:
                    totals[key] += result.stats.get(key, 0)
        lines.append(
            f"{criterion:9s}  " + "  ".join(f"{totals[k]:15d}" for k in keys)
        )
        hits, checks = totals["memo_hits"], totals["event_checks"]
        if hits + checks:
            lines[-1] += f"  hit-rate={hits / (hits + checks):.3f}"
    emit("checker_work_counters", "\n".join(lines))


def test_certificate_verification_cheap(benchmark):
    """Verifying a certificate must be far cheaper than searching for it."""
    from repro.criteria import verify_certificate

    rng = random.Random(5)
    cases = []
    while len(cases) < 5:
        h, adt = random_window_history(rng, processes=2, ops_per_process=3)
        result = check(h, adt, "CC")
        if result.ok:
            cases.append((h, adt, result.certificate))

    def verify_all():
        for h, adt, cert in cases:
            verify_certificate(h, adt, cert)

    benchmark(verify_all)
