"""E9 — session guarantees per algorithm (Secs. 1 and 4, Terry et al.).

Regenerates the paper's placement: causal algorithms satisfy all four
session guarantees on every run; the PRAM and LWW baselines violate the
cross-process guarantees on some schedules.

Two workload configurations are needed because the anomalies are
register-sensitive: monotonic-read regressions under FIFO replication
need a single contended register (a fast path overtaking a slow one on
the same cell), while monotonic-write violations under LWW need two
registers (a later write landing while the earlier one is in flight).
"""

from repro.analysis import format_session_table, session_guarantee_rates
from repro.runtime import DelayModel

from _util import emit

GUARANTEES = ("RYW", "MR", "MW", "WFR")


def _run(registers: str):
    # stable fast/slow paths provoke FIFO reorderings on one register;
    # high per-message jitter provokes LWW write reorderings across two
    delay = (
        DelayModel.per_link(0.2, 40.0)
        if len(registers) == 1
        else DelayModel.uniform(0.2, 40.0)
    )
    return session_guarantee_rates(
        runs=30, n=4, ops_per_process=8, registers=registers, seed=2026,
        delay=delay,
    )


def test_session_guarantees(benchmark):
    single, double = benchmark.pedantic(
        lambda: (_run("a"), _run("ab")), rounds=1, iterations=1
    )
    text = (
        "single contended register (MR anomalies under FIFO):\n"
        + format_session_table(single)
        + "\n\ntwo registers (MW anomalies under LWW):\n"
        + format_session_table(double)
    )
    emit("session_guarantees", text)
    # causal algorithms: violation-free in every configuration
    for reports in (single, double):
        for report in reports:
            if report.algorithm.startswith(("CC(", "CCv(")):
                for guarantee in GUARANTEES:
                    assert report.rate(guarantee) == 0.0, (
                        report.algorithm,
                        guarantee,
                    )
    # baselines: at least one violation somewhere across configurations
    baseline_rates = [
        report.rate(g)
        for reports in (single, double)
        for report in reports
        if report.algorithm.startswith(("PC(", "EC("))
        for g in GUARANTEES
    ]
    assert any(rate > 0 for rate in baseline_rates)
