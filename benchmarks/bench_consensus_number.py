"""E7 — the consensus number of W_k is k (Sec. 2.1).

Regenerates the agreement matrix: n proposers over a sequentially
consistent window stream of size k agree iff n <= k.
"""

from repro.analysis import consensus_matrix, format_matrix

from _util import emit


def test_consensus_matrix(benchmark):
    rates = benchmark.pedantic(
        lambda: consensus_matrix(max_n=5, max_k=4, runs=15, seed=3),
        rounds=1,
        iterations=1,
    )
    emit("consensus_number_matrix", format_matrix(rates))
    for (n, k), rate in rates.items():
        if n <= k:
            assert rate == 1.0, f"n={n} <= k={k} must agree"
    for k in range(1, 5):
        if (k + 1, k) in rates:
            assert rates[(k + 1, k)] < 1.0, f"boundary at k={k} not observed"
