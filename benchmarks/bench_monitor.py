"""Throughput benchmark for the streaming bad-pattern monitor.

The enumeration-search benchmarks (``bench_search_scaling.py``) track the
exponential checker; this one tracks the *polynomial* streaming monitor
(``repro.criteria.streaming_monitor``): operations per wall-clock second
and memory high-water on synthetic correct-by-construction CCv histories
of 10k, 100k and 1M operations, plus first-violation detection latency on
a history with a known violation spliced mid-stream::

    PYTHONPATH=src python benchmarks/bench_monitor.py                  # full sweep
    PYTHONPATH=src python benchmarks/bench_monitor.py --smoke          # CI guard
    PYTHONPATH=src python benchmarks/bench_monitor.py \
        --baseline benchmarks/results/BENCH_monitor_seed.json          # compare

The histories are generated directly (no simulator): a global issue
order arbitrates all writes, every process observes a monotone prefix of
it plus its own writes, and reads return the last-k visible writes per
stream — visibility is prefix-closed along the issue order, so the
history satisfies CCv by construction and the monitor must report
``ok=True`` on every clean cell.  The generator is seeded and
deterministic, so verdicts (and the spliced violation's pattern + index)
are part of the JSON and ``--baseline`` fails on any verdict drift;
throughput and memory are compared informationally (clock noise moves
them) with a hard floor: the 100k-op cell must stream at
``--min-ops-per-sec`` (default 10k ops/s) and the wall-time exponent
between successive cell sizes must stay sub-quadratic.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import platform
import random
import sys
import time
import tracemalloc
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Tuple

_HERE = pathlib.Path(__file__).resolve().parent
_ROOT = _HERE.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.core.operations import BOTTOM, Invocation  # noqa: E402
from repro.criteria.streaming_monitor import StreamingMonitor  # noqa: E402

#: cell sizes of the full sweep (ops per history)
FULL_SIZES = (10_000, 100_000, 1_000_000)
#: cell sizes of the CI smoke slice (wall-capped)
SMOKE_SIZES = (10_000, 100_000)

#: generator shape shared by every cell
N_PROCS = 8
STREAMS = 4
K = 2
WRITE_RATIO = 0.5
MAX_LAG = 64  # delivery frontier may trail the issue order by this many writes


def synthetic_ccv_ops(
    seed: int, total_ops: int
) -> List[Tuple[int, Invocation, Any]]:
    """A correct-by-construction CCv operation stream, in issue order.

    Writes are arbitrated by a single global issue order; process ``p``
    observes a monotone prefix of it (its delivery frontier) plus its own
    writes, and a read returns the last :data:`K` visible writes of the
    stream in issue order.  Every visible set is prefix-closed along the
    issue order, hence causally closed, hence the history is CCv with the
    issue order as arbitration.
    """
    rng = random.Random(seed)
    # per-stream global write log: parallel (issue-index, value) columns
    gw_idx: List[List[int]] = [[] for _ in range(STREAMS)]
    gw_val: List[List[int]] = [[] for _ in range(STREAMS)]
    issued = 0  # global write count == next issue index
    frontier = [0] * N_PROCS  # delivered prefix length, per process
    own: List[List[List[Tuple[int, int]]]] = [
        [[] for _ in range(STREAMS)] for _ in range(N_PROCS)
    ]
    ops: List[Tuple[int, Invocation, Any]] = []
    value = 0
    for _ in range(total_ops):
        p = rng.randrange(N_PROCS)
        # advance p's frontier to within MAX_LAG of the issue order
        target = max(frontier[p], issued - rng.randrange(MAX_LAG + 1))
        if target > frontier[p]:
            frontier[p] = target
            for x in range(STREAMS):
                mine = own[p][x]
                while mine and mine[0][0] < target:
                    mine.pop(0)
        x = rng.randrange(STREAMS)
        if rng.random() < WRITE_RATIO:
            value += 1
            gw_idx[x].append(issued)
            gw_val[x].append(value)
            own[p][x].append((issued, value))
            issued += 1
            ops.append((p, Invocation("w", (x, value)), BOTTOM))
        else:
            # last K of (delivered prefix of stream x) ∪ (own undelivered)
            cut = bisect_left(gw_idx[x], frontier[p])
            mine = own[p][x]
            tail = [
                (gw_idx[x][i], gw_val[x][i]) for i in range(max(0, cut - K), cut)
            ] + mine[-K:]
            tail.sort()
            window = [v for _, v in tail[-K:]]
            window = [0] * (K - len(window)) + window
            ops.append((p, Invocation("r", (x,)), tuple(window)))
    return ops


def splice_violation(
    ops: List[Tuple[int, Invocation, Any]], at: int
) -> Tuple[List[Tuple[int, Invocation, Any]], int]:
    """Insert a window-order violation closing at stream index ``at+2``:
    one process writes w1 then w2 (so w1 is causally before w2) and then
    reads a window claiming w2 is *older* than w1.  The gadget is
    confined to fresh values on one process, so it cannot interact with
    the surrounding clean stream — the first violation is exactly here."""
    w1, w2 = 10_000_000, 10_000_001
    x = STREAMS - 1
    gadget = [
        (0, Invocation("w", (x, w1)), BOTTOM),
        (0, Invocation("w", (x, w2)), BOTTOM),
        (0, Invocation("r", (x,)), (w2, w1)),  # inverted vs program order
    ]
    out = ops[:at] + gadget + ops[at:]
    return out, at + 2


def run_cell(
    seed: int,
    total_ops: int,
    criteria: Tuple[str, ...],
    *,
    violation_at: Optional[int] = None,
    trace_memory: bool = True,
) -> Dict[str, Any]:
    ops = synthetic_ccv_ops(seed, total_ops)
    expected_index: Optional[int] = None
    if violation_at is not None:
        ops, expected_index = splice_violation(ops, violation_at)

    def stream_once() -> Tuple[Dict[str, Any], Dict[str, Any]]:
        monitor = StreamingMonitor(
            N_PROCS, streams=STREAMS, k=K, criteria=criteria
        )
        feed = monitor.feed
        for p, invocation, output in ops:
            feed(p, invocation, output)
        verdicts = monitor.finalize()
        return (
            {
                c: {
                    "ok": v.ok,
                    "pattern": v.violation.pattern if v.violation else None,
                    "index": v.violation.index if v.violation else None,
                }
                for c, v in verdicts.items()
            },
            monitor.stats(),
        )

    t0 = time.perf_counter()
    verdicts, stats = stream_once()
    wall = time.perf_counter() - t0

    mem_high_water = None
    if trace_memory:
        tracemalloc.start()
        stream_once()
        _, mem_high_water = tracemalloc.get_traced_memory()
        tracemalloc.stop()

    return {
        "ops": len(ops),
        "seed": seed,
        "criteria": list(criteria),
        "wall": wall,
        "ops_per_sec": len(ops) / wall if wall else 0.0,
        "mem_high_water": mem_high_water,
        "verdicts": verdicts,
        "expected_violation_index": expected_index,
        "stats": {
            key: stats.get(key)
            for key in (
                "ops_seen",
                "rf_edges",
                "cf_edges",
                "d_edges",
                "hb_edges",
                "patterns_checked",
                "propagate_steps",
                "first_violation_index",
            )
        },
    }


def scaling_exponents(cells: List[Dict[str, Any]]) -> List[float]:
    """Wall-time growth exponents between successive clean cell sizes
    (t ~ N^alpha); sub-quadratic means every alpha < 2."""
    alphas = []
    for small, big in zip(cells, cells[1:]):
        if small["wall"] <= 0 or big["ops"] == small["ops"]:
            continue
        alphas.append(
            math.log(big["wall"] / small["wall"])
            / math.log(big["ops"] / small["ops"])
        )
    return alphas


def compare_to_baseline(
    report: Dict[str, Any], baseline: Dict[str, Any]
) -> Tuple[Dict[str, Any], int]:
    """Verdicts (incl. the spliced violation's pattern + index) must
    match; throughput/memory are informational."""
    mismatches = 0
    rows = []
    base_cells = {
        (c["ops"], c["seed"], tuple(c["criteria"])): c
        for c in baseline.get("cells", [])
    }
    for cell in report["cells"]:
        key = (cell["ops"], cell["seed"], tuple(cell["criteria"]))
        base = base_cells.get(key)
        if base is None:
            mismatches += 1
            print(f"CELL MISSING FROM BASELINE: {key}", file=sys.stderr)
            continue
        drift = cell["verdicts"] != base["verdicts"]
        if drift:
            mismatches += 1
            print(f"VERDICT DRIFT in {key}", file=sys.stderr)
        speedup = (
            cell["ops_per_sec"] / base["ops_per_sec"]
            if base.get("ops_per_sec")
            else 0.0
        )
        rows.append(
            {"cell": list(key[:2]), "speedup": round(speedup, 2), "drift": drift}
        )
    base_violation = baseline.get("violation_cell")
    if base_violation and report.get("violation_cell"):
        new = report["violation_cell"]
        if (
            new["verdicts"] != base_violation["verdicts"]
            or new["stats"]["first_violation_index"]
            != base_violation["stats"]["first_violation_index"]
        ):
            mismatches += 1
            print("VIOLATION-CELL DRIFT vs baseline", file=sys.stderr)
    return {"cells": rows}, mismatches


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="10k+100k cells only, memory traced on the largest (CI guard)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-ops-per-sec", type=float, default=10_000.0,
        help="hard floor for the 100k-op cell (exit 2 below it)",
    )
    parser.add_argument(
        "--max-seconds", type=float, default=None,
        help="fail (exit 2) when the sweep exceeds this wall-time",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="earlier BENCH_monitor.json to compare (exit 1 on verdict drift)",
    )
    parser.add_argument("--out", default="BENCH_monitor.json")
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    t_start = time.perf_counter()
    cells: List[Dict[str, Any]] = []
    for total_ops in sizes:
        # tracemalloc multiplies the traced run's wall several-fold: the
        # wall-capped smoke traces only the 10k cell; the full sweep
        # traces every tier — the 1M high-water is the headline number
        # for the streaming monitor's bounded-frontier claim, so it must
        # be measured, not extrapolated from the trend
        trace = total_ops <= 10_000 if args.smoke else True
        cell = run_cell(
            args.seed, total_ops, ("WCC", "CCV"), trace_memory=trace
        )
        cells.append(cell)
        mem = (
            f"{cell['mem_high_water'] / 1e6:7.1f}MB"
            if cell["mem_high_water"] is not None
            else "   (untraced)"
        )
        print(
            f"{cell['ops']:>9d} ops wall={cell['wall']:7.2f}s "
            f"ops/s={cell['ops_per_sec']:>9.0f} mem={mem} "
            f"hb_edges={cell['stats']['hb_edges']}",
            file=sys.stderr,
        )
        clean = all(v["ok"] is True for v in cell["verdicts"].values())
        if not clean:
            print(f"UNEXPECTED VERDICT on clean cell: {cell['verdicts']}",
                  file=sys.stderr)
            return 1

    # mid-stream detection: violation spliced at the halfway mark of a
    # 100k-op stream; the monitor must flag it with the exact index
    violation_cell = run_cell(
        args.seed, 100_000, ("WCC", "CCV"),
        violation_at=50_000, trace_memory=False,
    )
    detected = violation_cell["stats"]["first_violation_index"]
    print(
        f"violation cell: first_violation_index={detected} "
        f"(expected {violation_cell['expected_violation_index']}) "
        f"wall={violation_cell['wall']:.2f}s",
        file=sys.stderr,
    )
    if detected != violation_cell["expected_violation_index"]:
        print("VIOLATION NOT DETECTED AT THE SPLICE POINT", file=sys.stderr)
        return 1

    alphas = scaling_exponents(cells)
    report: Dict[str, Any] = {
        "benchmark": "streaming-monitor",
        "smoke": args.smoke,
        "seed": args.seed,
        "python": platform.python_version(),
        "shape": {
            "n": N_PROCS, "streams": STREAMS, "k": K,
            "write_ratio": WRITE_RATIO, "max_lag": MAX_LAG,
        },
        "cells": cells,
        "violation_cell": violation_cell,
        "totals": {
            "wall": time.perf_counter() - t_start,
            "scaling_exponents": [round(a, 3) for a in alphas],
            "ops_per_sec_at_100k": next(
                (c["ops_per_sec"] for c in cells if c["ops"] == 100_000), None
            ),
        },
    }

    exit_code = 0
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        comparison, mismatches = compare_to_baseline(report, baseline)
        report["baseline_comparison"] = comparison
        print("vs baseline:", json.dumps(comparison), file=sys.stderr)
        if mismatches:
            exit_code = 1

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(
        f"total wall {report['totals']['wall']:.1f}s, scaling exponents "
        f"{report['totals']['scaling_exponents']}, report -> {args.out}",
        file=sys.stderr,
    )

    at_100k = report["totals"]["ops_per_sec_at_100k"]
    if at_100k is not None and at_100k < args.min_ops_per_sec:
        print(
            f"THROUGHPUT REGRESSION: {at_100k:.0f} ops/s at 100k ops "
            f"< {args.min_ops_per_sec:.0f}",
            file=sys.stderr,
        )
        exit_code = 2
    if any(a >= 2.0 for a in alphas):
        print(f"SUPER-QUADRATIC SCALING: exponents {alphas}", file=sys.stderr)
        exit_code = 2
    if args.max_seconds is not None and report["totals"]["wall"] > args.max_seconds:
        print(
            f"WALL-TIME REGRESSION: {report['totals']['wall']:.1f}s "
            f"> {args.max_seconds}s",
            file=sys.stderr,
        )
        exit_code = 2
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
