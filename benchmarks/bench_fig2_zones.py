"""E2 — regenerate the Fig. 2 time-zone decomposition.

Builds the 3x4 grid history of Fig. 2, imposes a causal order extending
the program order, and renders the six zones of the highlighted event
(sigma^7, the centre of the figure).  The benchmark measures zone
computation over all events.
"""

from repro.adts import Counter
from repro.core import History
from repro.criteria.zones import causal_order_masks, render_zones, zones_of

from _util import emit


def _fig2_history():
    """Three processes of four events each, as drawn in Fig. 2."""
    c = Counter()
    rows = [[c.inc() for _ in range(4)] for _ in range(3)]
    return History.from_processes(rows)


#: causal edges (dashed in the figure): cross-process knowledge — two
#: into the centre event's past, one out of it into p2's future
CAUSAL_EDGES = [(1, 6), (9, 6), (6, 10), (2, 5)]
CENTRE = 6  # sigma^7: the third event of the middle process


def test_fig2_zones(benchmark):
    history = _fig2_history()

    def zones_for_all():
        pred = causal_order_masks(history, CAUSAL_EDGES)
        return [zones_of(history, e, pred) for e in range(len(history))]

    all_zones = benchmark(zones_for_all)
    centre = all_zones[CENTRE]
    text = render_zones(history, centre)
    legend = (
        "zones of the centre event (Fig. 2): PP=program past, CP=causal past\n"
        "beyond program, PF=program future, CF=causal future, CC=concurrent\n"
        "present.  WCC constrains CP+PP effects; CC adds PP outputs; SC\n"
        "forbids CC non-empty.\n\n"
    )
    emit("fig2_zones", legend + text)
    # structural checks matching the figure
    assert centre.program_past == {4, 5}
    assert 1 in centre.pure_causal_past  # pulled in by a dashed edge
    assert 10 in centre.causal_future
    assert centre.concurrent_present  # weaker-than-SC zone non-empty
