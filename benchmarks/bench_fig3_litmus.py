"""E3 — regenerate the Fig. 3 litmus classification table.

The discrete heart of the reproduction: all nine histories of Fig. 3,
classified by the exact checkers against every criterion, side by side
with the paper's captions.  The benchmark measures the full-table
classification time (the cost of deciding all 9 histories x 6 criteria).
"""

import pytest

from repro.criteria import check
from repro.litmus import all_litmus

from _util import emit

CRITERIA = ("SC", "CC", "CCV", "PC", "WCC", "CM")


def classify_all():
    table = {}
    for litmus in all_litmus():
        row = {}
        for criterion in CRITERIA:
            if criterion in litmus.expected:
                row[criterion] = check(litmus.history, litmus.adt, criterion).ok
        table[litmus.key] = (litmus, row)
    return table


def _render(table) -> str:
    lines = [
        f"{'fig':4s} {'caption claims':24s} "
        + " ".join(f"{c:>5s}" for c in CRITERIA)
        + "   verdict"
    ]
    mismatches = 0
    for key, (litmus, row) in sorted(table.items()):
        cells = []
        for criterion in CRITERIA:
            if criterion not in row:
                cells.append("    -")
                continue
            measured = row[criterion]
            expected = litmus.expected[criterion]
            mark = "yes" if measured else "no"
            if measured != expected:
                mark += "!"
                mismatches += 1
            cells.append(f"{mark:>5s}")
        claims = ",".join(
            f"{'' if v else 'not '}{c}" for c, v in sorted(litmus.paper_claims.items())
        )
        status = "match" if all(
            row[c] == litmus.expected[c] for c in row
        ) else "MISMATCH"
        lines.append(f"{key:4s} {claims[:24]:24s} " + " ".join(cells) + f"   {status}")
    lines.append(
        f"\ncells disagreeing with the verified classification: {mismatches} "
        "(expected 0; see litmus.figures for the documented 3g caption note)"
    )
    return "\n".join(lines)


def test_fig3_litmus_table(benchmark):
    table = benchmark.pedantic(classify_all, rounds=3, iterations=1)
    emit("fig3_litmus_table", _render(table))
    for key, (litmus, row) in table.items():
        for criterion, measured in row.items():
            assert measured == litmus.expected[criterion], (key, criterion)


@pytest.mark.parametrize("criterion", CRITERIA)
def test_single_criterion_cost(benchmark, criterion):
    """Per-criterion decision cost across the whole litmus suite."""
    cases = [
        (litmus.history, litmus.adt)
        for litmus in all_litmus()
        if criterion in litmus.expected
    ]

    def run():
        return [check(h, adt, criterion).ok for h, adt in cases]

    benchmark(run)
