"""E8 — convergence: CCv always converges, CC may diverge (Sec. 5).

Regenerates the dichotomy between the two branches of Fig. 1 on the
algorithms of Figs. 4 and 5 under identical concurrent-write workloads,
and reports CCv convergence time as a function of the network delay.
"""

from repro.algorithms import CCWindowArray, CCvWindowArray
from repro.analysis import divergence_rate, measure_convergence
from repro.runtime import DelayModel

from _util import emit


def test_divergence_rates(benchmark):
    def rates():
        return {
            "CCv (Fig. 5)": divergence_rate(
                CCvWindowArray, runs=15, n=4, streams=1, k=2, seed=1
            ),
            "CC (Fig. 4)": divergence_rate(
                CCWindowArray, runs=15, n=4, streams=1, k=2, seed=1
            ),
        }

    result = benchmark.pedantic(rates, rounds=1, iterations=1)
    lines = ["fraction of 15 concurrent-write runs whose replicas diverge:"]
    for name, rate in result.items():
        lines.append(f"  {name:14s}: {rate:5.2f}")
    lines.append("\nCCv converges always (Prop. 7 / eventual consistency);")
    lines.append("CC orders concurrent writes by delivery and may diverge —")
    lines.append("the two irreconcilable branches of Fig. 1.")
    emit("convergence_dichotomy", "\n".join(lines))
    assert result["CCv (Fig. 5)"] == 0.0
    assert result["CC (Fig. 4)"] > 0.0


def test_ccv_convergence_time_vs_delay(benchmark):
    def sweep():
        rows = []
        for d in (1.0, 3.0, 9.0):
            times = []
            for r in range(10):
                res = measure_convergence(
                    CCvWindowArray, n=4, streams=1, k=2, seed=100 + r,
                    delay=DelayModel.uniform(0.2 * d, 1.8 * d),
                )
                assert res.converged
                times.append(res.convergence_time)
            rows.append((d, sum(times) / len(times)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["CCv mean convergence time after last update vs mean delay:"]
    for d, t in rows:
        lines.append(f"  delay~{d:4.1f}: {t:7.2f} time units")
    lines.append("\nconvergence time tracks the network delay (information")
    lines.append("must travel), while *operation latency* stays 0 — the")
    lines.append("essence of eventual delivery + wait-free operations.")
    emit("ccv_convergence_time", "\n".join(lines))
    assert rows[-1][1] >= rows[0][1] * 0.5  # grows (noisily) with delay
