"""E4 — the Fig. 4 algorithm: throughput, message cost, wait-freedom.

Measures simulated-operation throughput (host-seconds per simulated op),
messages per operation with and without reliability flooding, and
model-checks a sampled run against the exact CC checker (Prop. 6).
"""

import random

import pytest

from repro.adts import WindowStreamArray
from repro.algorithms import CCWindowArray
from repro.analysis.harness import run_workload, window_script
from repro.criteria import check
from repro.runtime import DelayModel

from _util import emit


def _scripts(seed, n, length, streams):
    return [
        window_script(random.Random(seed + pid), length, streams)
        for pid in range(n)
    ]


@pytest.mark.parametrize("n", [2, 4, 8])
def test_fig4_throughput(benchmark, n):
    """Host cost of simulating the CC algorithm as processes scale."""
    scripts = _scripts(11, n, 30, 2)

    def run():
        return run_workload(
            CCWindowArray, n, scripts, seed=n, streams=2, k=2, flood=False
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.ops == 30 * n
    assert result.mean_latency == 0.0  # wait-free


def test_fig4_message_cost(benchmark):
    rows = ["messages per operation, write ratio 0.5 (reads are local):",
            f"{'n':>3s} {'direct':>8s} {'flooded':>8s}"]
    for n in (2, 4, 8):
        per = {}
        for flood in (False, True):
            scripts = _scripts(13, n, 20, 2)
            result = run_workload(
                CCWindowArray, n, scripts, seed=5, streams=2, k=2, flood=flood
            )
            per[flood] = result.messages_per_op
        rows.append(f"{n:>3d} {per[False]:8.2f} {per[True]:8.2f}")
    benchmark.pedantic(lambda: run_workload(
        CCWindowArray, 4, _scripts(13, 4, 20, 2), seed=5, streams=2, k=2,
        flood=False), rounds=1, iterations=1)
    rows.append("\ndirect ~ (n-1)/2 per op; flooding pays ~(n-1)^2 for crash-"
                "tolerant agreement")
    emit("fig4_message_cost", "\n".join(rows))


def test_fig4_model_checked(benchmark):
    """End-to-end: simulate then verify CC with the exact checker."""
    adt = WindowStreamArray(2, 2)
    scripts = _scripts(17, 3, 4, 2)

    def run_and_check():
        result = run_workload(
            CCWindowArray, 3, scripts, seed=9, streams=2, k=2,
            delay=DelayModel.uniform(0.5, 10.0),
        )
        verdict = check(result.history, adt, "CC")
        return verdict

    verdict = benchmark.pedantic(run_and_check, rounds=2, iterations=1)
    assert verdict.ok


def test_fig4_latency_independent_of_delay(benchmark):
    lines = ["mean operation latency (simulated time units) vs mean delay:"]
    for d in (1.0, 10.0, 100.0):
        result = run_workload(
            CCWindowArray, 3, _scripts(19, 3, 10, 2), seed=2,
            streams=2, k=2, delay=DelayModel.uniform(0.5 * d, 1.5 * d),
        )
        lines.append(f"  delay~{d:6.1f}: latency={result.mean_latency}")
        assert result.mean_latency == 0.0
    benchmark.pedantic(lambda: run_workload(
        CCWindowArray, 3, _scripts(19, 3, 10, 2), seed=2, streams=2, k=2),
        rounds=1, iterations=1)
    lines.append("wait-freedom: latency is identically 0 at every delay")
    emit("fig4_wait_freedom", "\n".join(lines))
