"""E4 — the Fig. 4 algorithm: throughput, message cost, wait-freedom.

Measures simulated-operation throughput (host-seconds per simulated op),
messages per operation with and without reliability flooding, and
model-checks a sampled run against the exact CC checker (Prop. 6).

The model-check and wait-freedom experiments are specified declaratively
as :class:`ScenarioSpec` (the scenario engine subsumes the old
``run_workload`` wiring — including a partition thrown mid-run); the
throughput/message-cost experiments keep the explicit-script
``run_workload`` path, which now routes through the same engine.
"""

import random
from dataclasses import replace

import pytest

from repro.adts import WindowStreamArray
from repro.algorithms import CCWindowArray
from repro.analysis.harness import run_workload, window_script
from repro.criteria import check
from repro.runtime import DelayModel
from repro.scenarios import (
    DelaySpec,
    FaultEvent,
    Scenario,
    ScenarioSpec,
    WorkloadSpec,
)

from _util import emit

#: the declarative model-check condition: 3 processes, wide random delays
FIG4_SCENARIO = ScenarioSpec(
    name="fig4-model-check",
    n=3,
    streams=2,
    k=2,
    delay=DelaySpec("uniform", (0.5, 10.0)),
    workload=WorkloadSpec(ops_per_process=4),
    quiescence_reads=False,
)


def _scripts(seed, n, length, streams):
    return [
        window_script(random.Random(seed + pid), length, streams)
        for pid in range(n)
    ]


@pytest.mark.parametrize("n", [2, 4, 8])
def test_fig4_throughput(benchmark, n):
    """Host cost of simulating the CC algorithm as processes scale."""
    scripts = _scripts(11, n, 30, 2)

    def run():
        return run_workload(
            CCWindowArray, n, scripts, seed=n, streams=2, k=2, flood=False
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.ops == 30 * n
    assert result.mean_latency == 0.0  # wait-free


def test_fig4_message_cost(benchmark):
    rows = ["messages per operation, write ratio 0.5 (reads are local):",
            f"{'n':>3s} {'direct':>8s} {'flooded':>8s}"]
    for n in (2, 4, 8):
        per = {}
        for flood in (False, True):
            scripts = _scripts(13, n, 20, 2)
            result = run_workload(
                CCWindowArray, n, scripts, seed=5, streams=2, k=2, flood=flood
            )
            per[flood] = result.messages_per_op
        rows.append(f"{n:>3d} {per[False]:8.2f} {per[True]:8.2f}")
    benchmark.pedantic(lambda: run_workload(
        CCWindowArray, 4, _scripts(13, 4, 20, 2), seed=5, streams=2, k=2,
        flood=False), rounds=1, iterations=1)
    rows.append("\ndirect ~ (n-1)/2 per op; flooding pays ~(n-1)^2 for crash-"
                "tolerant agreement")
    emit("fig4_message_cost", "\n".join(rows))


def test_fig4_model_checked(benchmark):
    """End-to-end: simulate a declarative scenario, then verify CC with
    the exact checker."""
    scenario = Scenario(FIG4_SCENARIO)

    def run_and_check():
        result = scenario.run(CCWindowArray, seed=9, streams=2, k=2)
        return check(result.history, scenario.adt(), "CC")

    verdict = benchmark.pedantic(run_and_check, rounds=2, iterations=1)
    assert verdict.ok


def test_fig4_latency_independent_of_delay(benchmark):
    """Wait-freedom across delay regimes *and* under a mid-run partition:
    latency is identically 0 everywhere (the spec sweep replaces the old
    hand-wired delay loop)."""
    lines = ["mean operation latency (simulated time units) vs mean delay:"]
    base = replace(
        FIG4_SCENARIO,
        workload=WorkloadSpec(ops_per_process=10),
        faults=(FaultEvent.partition(1.5, (0, 1), (2,)), FaultEvent.heal(8.0)),
    )
    for d in (1.0, 10.0, 100.0):
        spec = replace(base, delay=DelaySpec("uniform", (0.5 * d, 1.5 * d)))
        result = Scenario(spec).run(CCWindowArray, seed=2, streams=2, k=2)
        lines.append(f"  delay~{d:6.1f}: latency={result.mean_latency}")
        assert result.mean_latency == 0.0
        assert result.blocked == 0  # available throughout the partition
    benchmark.pedantic(
        lambda: Scenario(base).run(CCWindowArray, seed=2, streams=2, k=2),
        rounds=1, iterations=1)
    lines.append("wait-freedom: latency is identically 0 at every delay, "
                 "partition included")
    emit("fig4_wait_freedom", "\n".join(lines))
