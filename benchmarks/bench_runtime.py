"""Throughput benchmark for the simulation plane (Sec. 6.1 runtime).

The checker-side benchmarks (``bench_search_scaling.py``) track the CCv
search; this one tracks the *history generator*: simulator, network and
broadcast stack.  It runs a fixed sweep of seeded scenario cells straight
through :class:`repro.scenarios.scenario.Scenario` (no criteria checking,
so the numbers isolate the runtime), measuring simulated operations and
simulator events per wall-clock second, plus the broadcast layer's
retained-log footprint (the causal-stability GC metric), and finally the
fast-mode explore matrix wall (runtime + checkers end to end)::

    PYTHONPATH=src python benchmarks/bench_runtime.py                   # full sweep
    PYTHONPATH=src python benchmarks/bench_runtime.py --smoke           # CI guard
    PYTHONPATH=src python benchmarks/bench_runtime.py \
        --baseline benchmarks/results/BENCH_runtime_seed.json           # compare
    PYTHONPATH=src python benchmarks/bench_runtime.py --scale           # + 10k-op cells

Every cell's recorded history is fingerprinted (sha256 over the per
process rows including invocation/response times), and the explore
verdict vector is part of the JSON, so ``--baseline`` proves that a
runtime optimisation changed *nothing observable*: fingerprints and
verdicts must be bit-identical (exit 1 otherwise), only the ops/s may
move.  ``--scale`` adds the registry's 10k-op scale-up scenarios
(``scale-n8-hotkey``, ``scale-n12-hotkey``) — sized for the indexed
runtime; the pre-PR 5 runtime is not expected to finish them in
reasonable time, so they are kept out of the default sweep.

``--fanout`` is a *standalone* A/B mode (it replaces the sweep): the
eager flood (``ccv-fig5``) against the push/lazy-push transport
(``ccv-lazy``) on the same dense hot-key workload at n ∈ {8, 16, 32, 64}
(``--smoke``: {8, 32}), recording messages/broadcast, messages/op,
bytes/op and ops/s per family plus the per-n reduction factors.  Each
pair is checked for identical per-replica delivered-id sets, within-run
convergence and clean runtime monitors; ``--min-reduction`` (default 4)
gates the message reduction at every n ≥ 32, and ``--baseline`` compares
against a committed fanout report (message counts and delivered digests
are deterministic, so any drift is exit 1 — the CI ``fanout-smoke``
guard).  ``--only SUBSTR`` narrows either mode to cells whose name
contains ``SUBSTR`` (skipping the explore matrix and baseline compare,
which need the full cell set).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import pathlib
import platform
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

_HERE = pathlib.Path(__file__).resolve().parent
_ROOT = _HERE.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.scenarios.matrix import ALGORITHMS, _build_kwargs, run_matrix  # noqa: E402
from repro.scenarios.scenario import RunResult, Scenario  # noqa: E402
from repro.scenarios.spec import (  # noqa: E402
    DelaySpec,
    FaultEvent,
    ScenarioSpec,
    WorkloadSpec,
)

F = FaultEvent


def _open(n: int, ops: int, rate: float = 3.0, **kw: Any) -> WorkloadSpec:
    return WorkloadSpec(
        kind="open",
        ops_per_process=ops,
        rate=rate,
        write_ratio=kw.pop("write_ratio", 0.5),
        hot_key_weight=kw.pop("hot_key_weight", 0.8),
        **kw,
    )


def _sweep(smoke: bool) -> List[Tuple[ScenarioSpec, str]]:
    """The benchmark cells: (spec, algorithm key).

    Sized so the pre-rewrite runtime still finishes the whole sweep in a
    couple of minutes — the scale-up registry scenarios, which it cannot,
    are behind ``--scale``.
    """
    s = 0.2 if smoke else 1.0

    def ops(full: int) -> int:
        return max(20, int(full * s))

    cells = [
        (
            ScenarioSpec(
                name="open-n4-hotkey", n=4, streams=4,
                workload=_open(4, ops(600)),
            ),
            "ccv-fig5",
        ),
        (
            ScenarioSpec(
                name="open-n8-hotkey", n=8, streams=4,
                workload=_open(8, ops(300)),
            ),
            "ccv-fig5",
        ),
        (
            ScenarioSpec(
                name="open-n12-hotkey", n=12, streams=4,
                workload=_open(12, ops(150)),
            ),
            "ccv-fig5",
        ),
        (
            # a long two-by-two split with traffic piling up on both
            # sides: the held-message flush at heal is the causal
            # buffering stress test (the old drain rescan is quadratic
            # exactly here)
            ScenarioSpec(
                name="partition-n8", n=8, streams=4,
                faults=(
                    F.partition(2.0, (0, 1, 2, 3), (4, 5, 6, 7)),
                    F.heal(240.0 * s),
                ),
                workload=_open(8, ops(800), rate=3.0, write_ratio=0.6),
            ),
            "ccv-fig5",
        ),
        (
            # the same stress at n=12: the pre-rewrite drain degrades
            # quadratically with the held backlog, the indexed one stays
            # linear — this is the gap that only widens at 10x scale
            ScenarioSpec(
                name="partition-n12", n=12, streams=4,
                faults=(
                    F.partition(10.0, (0, 1, 2, 3, 4, 5), (6, 7, 8, 9, 10, 11)),
                    F.heal(160.0 * s),
                ),
                workload=_open(12, ops(550), rate=3.0, write_ratio=0.6),
            ),
            "ccv-fig5",
        ),
        (
            # stable fast/slow paths: constant reordering pressure keeps
            # the causal pending queues populated for the whole run
            ScenarioSpec(
                name="perlink-n8", n=8, streams=4,
                delay=DelaySpec("per-link", (2.0, 12.0, 0.2)),
                workload=_open(8, ops(250), rate=2.0),
            ),
            "ccv-fig5",
        ),
        (
            ScenarioSpec(
                name="fifo-n8", n=8, streams=4,
                workload=_open(8, ops(250)),
            ),
            "pram",
        ),
        (
            ScenarioSpec(
                name="reliable-n8", n=8, streams=4,
                workload=_open(8, ops(600)),
            ),
            "lww",
        ),
        (
            # the memory cell: a 10k-op run whose retained-log footprint
            # the causal-stability GC must keep bounded
            ScenarioSpec(
                name="stability-n4-10k", n=4, streams=4,
                workload=_open(4, ops(2500)),
            ),
            "ccv-fig5",
        ),
    ]
    return cells


#: smoke-mode explore slice: two contrasting scenarios, every algorithm
SMOKE_EXPLORE = ("partition-during-writes", "open-loop-overload")

#: the scale-up registry scenarios (post-PR 5 runtime required)
SCALE_SCENARIOS = ("scale-n8-hotkey", "scale-n12-hotkey")
#: mirrors repro.scenarios.matrix.SCALE_ALGORITHMS (kept local so the
#: benchmark also runs against pre-PR 5 checkouts for baseline recording)
SCALE_ALGORITHMS = ("lww", "gossip")


def history_fingerprint(result: RunResult) -> str:
    """sha256 over the recorded rows, times included — the bit-identity
    witness for the runtime rewrite."""
    h = hashlib.sha256()
    for pid, row in enumerate(result.recorder.rows):
        for rec in row:
            h.update(
                (
                    f"{pid}|{rec.invocation.method}|{rec.invocation.args!r}|"
                    f"{rec.output!r}|{rec.start!r}|{rec.end!r}\n"
                ).encode()
            )
    return h.hexdigest()


def log_footprint(algorithm: Any) -> Tuple[int, int]:
    """(max, total) retained anti-entropy log entries across replicas."""
    service = getattr(algorithm, "broadcast", None)
    logs = getattr(service, "_log", None)
    if not logs:
        return 0, 0
    sizes = [len(log) for log in logs]
    return max(sizes), sum(sizes)


def run_cell(
    spec: ScenarioSpec, algo_key: str, seed: int, repeats: int = 1
) -> Dict[str, Any]:
    entry = ALGORITHMS[algo_key]
    wall = math.inf
    for _ in range(max(1, repeats)):  # best-of: the run is deterministic,
        t0 = time.perf_counter()      # only the wall clock is noisy
        result = Scenario(spec).run(
            entry.cls, seed=seed, max_events=50_000_000,
            **_build_kwargs(entry, spec),
        )
        wall = min(wall, time.perf_counter() - t0)
    events = result.sim.events_executed
    log_max, log_total = log_footprint(result.algorithm)
    return {
        "name": spec.name,
        "algorithm": algo_key,
        "seed": seed,
        "n": spec.n,
        "ops": result.ops,
        "events": events,
        "messages_sent": result.network_stats.sent,
        "sim_duration": result.duration,
        "wall": wall,
        "ops_per_sec": result.ops / wall if wall else 0.0,
        "events_per_sec": events / wall if wall else 0.0,
        "log_max": log_max,
        "log_total": log_total,
        "fingerprint": history_fingerprint(result),
    }


def run_explore(smoke: bool, seeds: int) -> Dict[str, Any]:
    """The fast-mode explore matrix at jobs=1: end-to-end wall (runtime +
    checkers) plus the verdict vector for drift detection."""
    scenarios = list(SMOKE_EXPLORE) if smoke else None
    t0 = time.perf_counter()
    report = run_matrix(scenarios=scenarios, seeds=seeds, jobs=1, fast=True)
    wall = time.perf_counter() - t0
    return {
        "wall": wall,
        "cells": len(report.cells),
        "verdicts": [
            [c.scenario, c.algorithm, c.seed, c.ok, c.expected]
            for c in report.cells
        ],
    }


def run_scale_explore(smoke: bool) -> Dict[str, Any]:
    """The scale-up tier end to end through the matrix runner: the 10k-op
    scenarios with the convergence-checkable algorithms.  Unlike the
    fast-mode matrix above, these cells are *runtime-bound* (their CONV
    verdict is a state comparison), so this wall is the one the runtime
    rewrite moves.  Verdicts are recorded but compared informationally:
    PR 5 deliberately extends the gossip round budget past the open-loop
    arrival horizon, which turns the pre-PR gossip divergence on these
    scenarios (anti-entropy used to stop mid-traffic) into convergence."""
    t0 = time.perf_counter()
    report = run_matrix(
        scenarios=list(SCALE_SCENARIOS),
        algorithms=list(SCALE_ALGORITHMS),
        seeds=1,
        jobs=1,
        fast=smoke,
    )
    return {
        "wall": time.perf_counter() - t0,
        "cells": len(report.cells),
        "verdicts": [
            [c.scenario, c.algorithm, c.seed, c.ok, c.expected]
            for c in report.cells
        ],
        "conclusive": all(c.ok is not None for c in report.cells),
        "all_ok": all(c.ok is True for c in report.cells),
    }


def run_scale(seeds: int) -> Dict[str, Any]:
    """--scale: raw throughput cells of the 10k-op scenarios under the
    causal algorithm — the volume the pre-PR 5 runtime cannot finish in
    reasonable time, hence outside the default (baseline-comparable)
    sweep."""
    from repro.scenarios.registry import get_scenario

    cells = []
    for name in SCALE_SCENARIOS:
        spec = get_scenario(name)
        for seed in range(seeds):
            cells.append(run_cell(spec, "ccv-fig5", seed))
    return {"cells": cells}


# ----------------------------------------------------------------------
# --fanout: eager flood vs push/lazy-push A/B (PR 8)
# ----------------------------------------------------------------------
FANOUT_SIZES = (8, 16, 32, 64)
FANOUT_SIZES_SMOKE = (8, 32)
FANOUT_EAGER = "ccv-fig5"
FANOUT_LAZY = "ccv-lazy"
#: total operations per fanout cell, split across the n replicas — kept
#: constant across sizes so the broadcast count (and thus the per-
#: broadcast message ratio) is comparable between rows
FANOUT_OPS_TOTAL = 1280


def _fanout_spec(n: int) -> ScenarioSpec:
    # dense arrivals (rate 8): advertisement batches fill before the
    # flush timer fires, which is the traffic regime the lazy transport
    # is built for (sparse traffic degrades toward one adv per id)
    return ScenarioSpec(
        name=f"fanout-n{n}", n=n, streams=4,
        workload=_open(n, max(10, FANOUT_OPS_TOTAL // n), rate=8.0),
    )


def _delivered_sets(service: Any) -> List[frozenset]:
    """Per-replica set of seen message ids, reassembled from the compact
    frontier + spill representation."""
    n = len(service._frontier)
    sets = []
    for pid in range(n):
        mids = {
            (origin, seq)
            for origin in range(n)
            for seq in range(service._frontier[pid][origin])
        }
        mids.update(service._seen[pid])
        sets.append(frozenset(mids))
    return sets


def run_fanout_cell(
    spec: ScenarioSpec, algo_key: str, seed: int, repeats: int = 1
) -> Dict[str, Any]:
    entry = ALGORITHMS[algo_key]

    def post_setup(algorithm: Any) -> None:
        algorithm.broadcast.network.measure_bytes = True

    wall = math.inf
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = Scenario(spec).run(
            entry.cls, seed=seed, max_events=50_000_000,
            post_setup=post_setup, **_build_kwargs(entry, spec),
        )
        wall = min(wall, time.perf_counter() - t0)
    service = result.algorithm.broadcast
    stats = result.network_stats
    broadcasts = sum(service._next_id)
    delivered = _delivered_sets(service)
    complete = all(len(mids) == broadcasts for mids in delivered)
    digest = hashlib.sha256(
        repr([sorted(mids) for mids in delivered]).encode()
    ).hexdigest()
    pending = (
        sum(service._npending) if hasattr(service, "_npending") else 0
    )
    missing = (
        sum(service.missing_count(pid) for pid in range(spec.n))
        if hasattr(service, "missing_count")
        else 0
    )
    state = getattr(result.algorithm, "state", None)
    converged = state is not None and all(row == state[0] for row in state)
    ops = result.ops
    return {
        "name": spec.name,
        "algorithm": algo_key,
        "seed": seed,
        "n": spec.n,
        "ops": ops,
        "broadcasts": broadcasts,
        "messages_sent": stats.sent,
        "payload_bytes": stats.payload_bytes,
        "suppressed_relays": stats.suppressed_relays,
        "pulled": stats.pulled,
        "msgs_per_broadcast": round(stats.sent / broadcasts, 1)
        if broadcasts else 0.0,
        "msgs_per_op": round(stats.sent / ops, 1) if ops else 0.0,
        "bytes_per_op": round(stats.payload_bytes / ops, 1) if ops else 0.0,
        "wall": wall,
        "ops_per_sec": ops / wall if wall else 0.0,
        "delivered_complete": complete,
        "delivered_digest": digest,
        "pending": pending,
        "missing": missing,
        "converged": converged,
        "monitor_violations": [
            str(v) for v in result.monitor.violations
        ] if result.monitor is not None else [],
    }


def run_fanout(
    sizes: List[int], seed: int, repeats: int, min_reduction: float
) -> Tuple[Dict[str, Any], int]:
    """The A/B: one eager + one lazy run per n, paired and gated.

    Returns the report fragment and the number of failed gates (delivery
    or convergence defects, monitor violations, or a message reduction
    below ``min_reduction`` at n >= 32)."""
    cells: List[Dict[str, Any]] = []
    pairs: List[Dict[str, Any]] = []
    failures = 0
    for n in sizes:
        spec = _fanout_spec(n)
        eager = run_fanout_cell(spec, FANOUT_EAGER, seed, repeats)
        lazy = run_fanout_cell(spec, FANOUT_LAZY, seed, repeats)
        for cell in (eager, lazy):
            cells.append(cell)
            print(
                f"{cell['name']:>12s} {cell['algorithm']:>9s} "
                f"msgs/bcast={cell['msgs_per_broadcast']:>7.1f} "
                f"msgs/op={cell['msgs_per_op']:>6.1f} "
                f"bytes/op={cell['bytes_per_op']:>8.1f} "
                f"ops/s={cell['ops_per_sec']:>8.0f} "
                f"pulled={cell['pulled']}",
                file=sys.stderr,
            )
        reduction = (
            eager["msgs_per_broadcast"] / lazy["msgs_per_broadcast"]
            if lazy["msgs_per_broadcast"]
            else 0.0
        )
        bytes_reduction = (
            eager["payload_bytes"] / lazy["payload_bytes"]
            if lazy["payload_bytes"]
            else 0.0
        )
        clean = all(
            cell["delivered_complete"]
            and cell["converged"]
            and not cell["monitor_violations"]
            and cell["pending"] == 0
            and cell["missing"] == 0
            for cell in (eager, lazy)
        ) and eager["delivered_digest"] == lazy["delivered_digest"]
        # the headline gate lives at n >= 32 — the tier the lazy family
        # exists for; smaller n report reduction informationally
        gated = n >= 32
        ok = clean and (not gated or reduction >= min_reduction)
        if not ok:
            failures += 1
        pairs.append(
            {
                "n": n,
                "msgs_reduction": round(reduction, 2),
                "bytes_reduction": round(bytes_reduction, 2),
                "delivered_equal": eager["delivered_digest"]
                == lazy["delivered_digest"],
                "clean": clean,
                "gated": gated,
                "ok": ok,
            }
        )
        print(
            f"{spec.name:>12s} reduction: msgs {reduction:.2f}x, "
            f"bytes {bytes_reduction:.2f}x, clean={clean}, ok={ok}",
            file=sys.stderr,
        )
    return {"cells": cells, "pairs": pairs}, failures


def compare_fanout_baseline(
    report: Dict[str, Any], baseline: Dict[str, Any]
) -> int:
    """Fanout runs are deterministic: message counts, delivered digests
    and pair verdicts must match the committed baseline exactly."""
    mismatches = 0
    base_cells = {
        (c["name"], c["algorithm"], c["seed"]): c
        for c in baseline.get("cells", [])
    }
    matched = set()
    for cell in report["cells"]:
        key = (cell["name"], cell["algorithm"], cell["seed"])
        base = base_cells.get(key)
        if base is None:
            mismatches += 1
            print(f"FANOUT CELL MISSING FROM BASELINE: {key}", file=sys.stderr)
            continue
        matched.add(key)
        for field_name in (
            "messages_sent", "broadcasts", "payload_bytes",
            "delivered_digest",
        ):
            if cell[field_name] != base[field_name]:
                mismatches += 1
                print(
                    f"FANOUT DRIFT in {key}: {field_name} "
                    f"{base[field_name]!r} -> {cell[field_name]!r}",
                    file=sys.stderr,
                )
    for key in base_cells:
        if key not in matched:
            mismatches += 1
            print(f"FANOUT BASELINE CELL NOT RUN: {key}", file=sys.stderr)
    base_pairs = {p["n"]: p for p in baseline.get("pairs", [])}
    for pair in report["pairs"]:
        base = base_pairs.get(pair["n"])
        if base is not None and pair["ok"] != base["ok"]:
            mismatches += 1
            print(
                f"FANOUT PAIR VERDICT CHANGED at n={pair['n']}: "
                f"{base['ok']} -> {pair['ok']}",
                file=sys.stderr,
            )
    return mismatches


# ----------------------------------------------------------------------
def _geomean(values: List[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def compare_to_baseline(
    report: Dict[str, Any], baseline: Dict[str, Any]
) -> Tuple[Dict[str, Any], int]:
    """Fingerprints and explore verdicts must match; speed may move."""
    base_cells = {
        (c["name"], c["algorithm"], c["seed"]): c
        for c in baseline.get("cells", [])
    }
    mismatches = 0
    speedups: List[float] = []
    rows: List[Dict[str, Any]] = []
    matched = set()
    for cell in report["cells"]:
        key = (cell["name"], cell["algorithm"], cell["seed"])
        base = base_cells.get(key)
        if base is None:
            # a cell the baseline has never seen cannot be drift-checked:
            # treat it as a mismatch so a renamed/added cell can't let
            # the guard pass vacuously
            mismatches += 1
            print(f"CELL MISSING FROM BASELINE: {key}", file=sys.stderr)
            continue
        matched.add(key)
        drift = cell["fingerprint"] != base["fingerprint"]
        if drift:
            mismatches += 1
            print(f"HISTORY DRIFT in {key}", file=sys.stderr)
        speedup = (
            cell["ops_per_sec"] / base["ops_per_sec"]
            if base["ops_per_sec"]
            else 0.0
        )
        speedups.append(speedup)
        rows.append(
            {"cell": list(key), "speedup": round(speedup, 2), "drift": drift}
        )
    for key in base_cells:
        if key not in matched:
            mismatches += 1
            print(f"BASELINE CELL NOT RUN: {key}", file=sys.stderr)
    base_verdicts = baseline.get("explore", {}).get("verdicts")
    verdict_drift = (
        base_verdicts is not None
        and base_verdicts != report["explore"]["verdicts"]
    )
    if verdict_drift:
        mismatches += 1
        print("EXPLORE VERDICTS CHANGED vs baseline", file=sys.stderr)
    base_scale = baseline.get("explore_scale", {})
    scale_wall_speedup = 0.0
    if base_scale.get("wall") and report["explore_scale"]["wall"]:
        scale_wall_speedup = round(
            base_scale["wall"] / report["explore_scale"]["wall"], 2
        )
    # informational only: the gossip round-budget fix deliberately flips
    # the pre-PR gossip divergence on the scale tier into convergence
    scale_verdict_changes = [
        [new, old]
        for new, old in zip(
            report["explore_scale"]["verdicts"],
            base_scale.get("verdicts", report["explore_scale"]["verdicts"]),
        )
        if new != old
    ]
    base_totals = baseline.get("totals", {})
    sweep_speedup = 0.0
    if base_totals.get("sweep_ops_per_sec"):
        sweep_speedup = round(
            report["totals"]["sweep_ops_per_sec"]
            / base_totals["sweep_ops_per_sec"],
            2,
        )
    comparison = {
        "cells": rows,
        "sweep_ops_per_sec_speedup": sweep_speedup,
        "ops_per_sec_speedup_geomean": round(_geomean(speedups), 2),
        "explore_wall_speedup": round(
            baseline.get("explore", {}).get("wall", 0.0)
            / report["explore"]["wall"],
            2,
        )
        if report["explore"]["wall"]
        else 0.0,
        "scale_explore_wall_speedup": scale_wall_speedup,
        "scale_verdict_changes": scale_verdict_changes,
        "verdict_drift": verdict_drift,
    }
    return comparison, mismatches


# ----------------------------------------------------------------------
def main_fanout(args: argparse.Namespace) -> int:
    """The --fanout entry point: the eager-vs-lazy A/B, gated and
    optionally compared to a committed baseline (exit 1 on any gate or
    drift failure, exit 2 on a wall-cap breach)."""
    t_start = time.perf_counter()
    sizes = list(FANOUT_SIZES_SMOKE if args.smoke else FANOUT_SIZES)
    if args.only:
        sizes = [n for n in sizes if args.only in f"fanout-n{n}"]
        if not sizes:
            print(
                f"--only {args.only!r} matches no fanout cell",
                file=sys.stderr,
            )
            return 1
    fanout, failures = run_fanout(
        sizes,
        seed=0,
        repeats=1 if args.smoke else args.repeats,
        min_reduction=args.min_reduction,
    )
    report: Dict[str, Any] = {
        "benchmark": "runtime-fanout",
        "smoke": args.smoke,
        "min_reduction": args.min_reduction,
        "python": platform.python_version(),
        "cells": fanout["cells"],
        "pairs": fanout["pairs"],
        "totals": {
            "wall": time.perf_counter() - t_start,
            "gate_failures": failures,
        },
    }
    exit_code = 1 if failures else 0
    if args.baseline and not args.only:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        mismatches = compare_fanout_baseline(report, baseline)
        report["baseline_mismatches"] = mismatches
        if mismatches:
            exit_code = 1
    elif args.baseline:
        print(
            f"--only {args.only!r}: skipping baseline comparison",
            file=sys.stderr,
        )
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(
        f"fanout total wall {report['totals']['wall']:.1f}s, "
        f"gate failures {failures}, report -> {args.out}",
        file=sys.stderr,
    )
    if (
        args.max_seconds is not None
        and report["totals"]["wall"] > args.max_seconds
    ):
        print(
            f"WALL-TIME REGRESSION: {report['totals']['wall']:.1f}s "
            f"> {args.max_seconds}s",
            file=sys.stderr,
        )
        exit_code = 2
    return exit_code


# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="shrunk sweep + two-scenario explore slice (CI guard)",
    )
    parser.add_argument("--seeds", type=int, default=2, help="seeds per cell")
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="wall-time measurements per cell (best-of; runs are "
        "deterministic, so only the clock is noisy)",
    )
    parser.add_argument(
        "--scale", action="store_true",
        help="also run the 10k-op scale-up registry scenarios",
    )
    parser.add_argument(
        "--fanout", action="store_true",
        help="standalone eager-vs-lazy broadcast A/B (replaces the sweep)",
    )
    parser.add_argument(
        "--min-reduction", type=float, default=4.0,
        help="fanout gate: required eager/lazy message reduction at "
        "every n >= 32",
    )
    parser.add_argument(
        "--only", default=None, metavar="SUBSTR",
        help="run only cells whose name contains SUBSTR (skips the "
        "explore matrix and the baseline comparison)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="earlier BENCH_runtime.json to compare (exit 1 on any "
        "history-fingerprint or explore-verdict drift)",
    )
    parser.add_argument(
        "--max-seconds", type=float, default=None,
        help="fail (exit 2) when the sweep exceeds this wall-time",
    )
    parser.add_argument("--out", default="BENCH_runtime.json")
    args = parser.parse_args(argv)

    if args.fanout:
        return main_fanout(args)

    t_start = time.perf_counter()
    cells: List[Dict[str, Any]] = []
    for spec, algo_key in _sweep(args.smoke):
        if args.only and args.only not in spec.name:
            continue
        for seed in range(args.seeds):
            cell = run_cell(
                spec, algo_key, seed, repeats=1 if args.smoke else args.repeats
            )
            cells.append(cell)
            print(
                f"{cell['name']:>18s} {algo_key:>9s} seed={seed} "
                f"ops={cell['ops']:>6d} events={cell['events']:>8d} "
                f"wall={cell['wall']:6.2f}s ops/s={cell['ops_per_sec']:>8.0f} "
                f"ev/s={cell['events_per_sec']:>9.0f} log_max={cell['log_max']}",
                file=sys.stderr,
            )

    if args.only and not cells:
        print(f"--only {args.only!r} matches no sweep cell", file=sys.stderr)
        return 1
    if args.only:
        # a partial sweep cannot be drift-checked: the explore matrix and
        # the baseline comparison only make sense over the full cell set
        print(
            f"--only {args.only!r}: skipping explore matrix and baseline "
            "comparison",
            file=sys.stderr,
        )
        explore = {"wall": 0.0, "cells": 0, "verdicts": []}
        explore_scale = {
            "wall": 0.0, "cells": 0, "verdicts": [],
            "conclusive": True, "all_ok": True,
        }
    else:
        explore = run_explore(
            args.smoke, seeds=1 if args.smoke else args.seeds
        )
        print(
            f"explore matrix (fast, jobs=1): {explore['cells']} cells in "
            f"{explore['wall']:.2f}s",
            file=sys.stderr,
        )
        explore_scale = run_scale_explore(args.smoke)
        print(
            f"scale explore ({'fast, ' if args.smoke else ''}lww+gossip, "
            f"jobs=1): {explore_scale['cells']} cells in "
            f"{explore_scale['wall']:.2f}s, conclusive="
            f"{explore_scale['conclusive']}, all_ok={explore_scale['all_ok']}",
            file=sys.stderr,
        )

    report: Dict[str, Any] = {
        "benchmark": "runtime-throughput",
        "smoke": args.smoke,
        "seeds": args.seeds,
        "python": platform.python_version(),
        "cells": cells,
        "explore": explore,
        "explore_scale": explore_scale,
        "totals": {
            "wall": time.perf_counter() - t_start,
            # the headline: sweep-level simulated throughput — total ops
            # over total cell wall.  The sweep is the workload (the
            # explore matrix is gated by its slowest cells), so this is
            # the number that moves when the runtime's worst case moves.
            "sweep_ops_per_sec": round(
                sum(c["ops"] for c in cells)
                / max(sum(c["wall"] for c in cells), 1e-9),
                1,
            ),
            "sweep_events_per_sec": round(
                sum(c["events"] for c in cells)
                / max(sum(c["wall"] for c in cells), 1e-9),
                1,
            ),
            "ops_per_sec_geomean": round(
                _geomean([c["ops_per_sec"] for c in cells]), 1
            ),
            "events_per_sec_geomean": round(
                _geomean([c["events_per_sec"] for c in cells]), 1
            ),
            "log_max": max(c["log_max"] for c in cells),
        },
    }
    if args.scale:
        report["scale"] = run_scale(seeds=1)
        for cell in report["scale"]["cells"]:
            print(
                f"{cell['name']:>18s} {cell['algorithm']:>9s} "
                f"seed={cell['seed']} ops={cell['ops']:>6d} "
                f"wall={cell['wall']:6.2f}s ops/s={cell['ops_per_sec']:>8.0f} "
                f"log_max={cell['log_max']}",
                file=sys.stderr,
            )

    exit_code = 0
    if args.baseline and not args.only:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        comparison, mismatches = compare_to_baseline(report, baseline)
        report["baseline_comparison"] = comparison
        print("vs baseline:", json.dumps(comparison), file=sys.stderr)
        if mismatches:
            exit_code = 1

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(
        f"total wall {report['totals']['wall']:.1f}s, sweep ops/s "
        f"{report['totals']['sweep_ops_per_sec']} (geomean "
        f"{report['totals']['ops_per_sec_geomean']}), report -> {args.out}",
        file=sys.stderr,
    )
    if args.max_seconds is not None and report["totals"]["wall"] > args.max_seconds:
        print(
            f"WALL-TIME REGRESSION: {report['totals']['wall']:.1f}s "
            f"> {args.max_seconds}s",
            file=sys.stderr,
        )
        exit_code = 2
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
