"""Substrate ablation — cost of the broadcast lattice (Sec. 6.1).

Measures, per primitive, the host cost and the message amplification of
delivering a batch of broadcasts; and the causal-broadcast buffering a
receiver pays to re-order deliveries (the price of causality at the
transport layer, which the paper's algorithms inherit).
"""

import pytest

from repro.runtime import (
    CausalBroadcast,
    DelayModel,
    FifoBroadcast,
    Network,
    ReliableBroadcast,
    Simulator,
    TotalOrderBroadcast,
)

from _util import emit

PRIMITIVES = {
    "reliable": ReliableBroadcast,
    "fifo": FifoBroadcast,
    "causal": CausalBroadcast,
    "total-order": TotalOrderBroadcast,
}


def _run_batch(service_cls, n=4, per_proc=10, seed=1, **kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, n, delay=DelayModel.uniform(0.5, 4.0))
    service = service_cls(net, **kwargs)
    counts = [0] * n
    for pid in range(n):
        service.endpoint(pid, lambda o, p, i=pid: counts.__setitem__(i, counts[i] + 1))
    for i in range(per_proc):
        for pid in range(n):
            service.broadcast(pid, (pid, i))
    sim.run()
    return net.stats.sent, counts


@pytest.mark.parametrize("name", sorted(PRIMITIVES))
def test_broadcast_throughput(benchmark, name):
    cls = PRIMITIVES[name]
    kwargs = {"flood": False} if name != "total-order" else {}

    def run():
        return _run_batch(cls, **kwargs)

    sent, counts = benchmark(run)
    assert all(c == 40 for c in counts)  # everyone delivers everything


def test_message_amplification(benchmark):
    lines = ["messages on the wire for 4 procs x 10 broadcasts each:",
             f"{'primitive':>12s} {'direct':>8s} {'flooded':>8s}"]
    for name, cls in sorted(PRIMITIVES.items()):
        if name == "total-order":
            sent, _ = _run_batch(cls)
            lines.append(f"{name:>12s} {sent:8d} {'n/a':>8s}")
            continue
        direct, _ = _run_batch(cls, flood=False)
        flooded, _ = _run_batch(cls, flood=True)
        lines.append(f"{name:>12s} {direct:8d} {flooded:8d}")
    lines.append("\ntotal-order routes through the sequencer (2 legs);"
                 " flooding pays (n-1)^2 for crash-tolerant agreement")
    emit("broadcast_amplification", "\n".join(lines))
    benchmark.pedantic(lambda: _run_batch(ReliableBroadcast, flood=True),
                       rounds=2, iterations=1)


def test_causal_buffering_grows_with_jitter(benchmark):
    """The causal broadcast holds back out-of-order messages; the buffer
    occupancy grows with delay jitter.  The workload forms real causal
    chains: each process re-broadcasts in reaction to deliveries, so a
    receiver can hold a reaction while its cause is still in flight."""

    def measure(jitter: float) -> int:
        sim = Simulator(seed=7)
        net = Network(sim, 4, delay=DelayModel.uniform(0.5, jitter))
        service = CausalBroadcast(net, flood=False)
        peak = [0]
        budget = [24]  # bound the reaction cascade

        def make_handler(pid):
            def handler(origin, payload):
                peak[0] = max(
                    peak[0],
                    max(service.pending_messages(q) for q in range(4)),
                )
                if origin != pid and budget[0] > 0:
                    budget[0] -= 1
                    service.broadcast(pid, ("react", pid, payload))

            return handler

        for pid in range(4):
            service.endpoint(pid, make_handler(pid))
        service.broadcast(0, ("seed", 0, None))
        sim.run()
        return peak[0]

    occupancy = {jitter: measure(jitter) for jitter in (1.0, 10.0, 40.0)}
    lines = ["peak causal-broadcast buffer occupancy vs delay jitter",
             "(reactive workload: broadcasts depend on deliveries):"]
    for jitter, peak_val in occupancy.items():
        lines.append(f"  jitter {jitter:5.1f}: {peak_val} buffered messages")
    emit("causal_buffering", "\n".join(lines))
    assert occupancy[40.0] > occupancy[1.0]
    benchmark.pedantic(lambda: measure(10.0), rounds=2, iterations=1)
