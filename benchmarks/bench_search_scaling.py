"""Scaling benchmark for the causal-order search engine (WCC/CC/CCv).

Unlike the pytest-benchmark suites, this is a standalone script so the
perf trajectory can be tracked across PRs in machine-readable form::

    PYTHONPATH=src python benchmarks/bench_search_scaling.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_search_scaling.py --smoke    # CI guard
    PYTHONPATH=src python benchmarks/bench_search_scaling.py \
        --baseline old/BENCH_search.json                                # compare

It sweeps random window-stream histories over event count (8-24) and
update density, runs the three causal checkers on each, and records
wall-time plus the search counters (``families_explored``,
``event_checks``, ``lin_nodes``, memo hit-rate, ...) into
``BENCH_search.json`` (repo root by default, ``--out`` to override).
Verdicts are part of the JSON so optimisation PRs can prove equivalence
against a stored baseline with ``--baseline`` (exits non-zero on any
verdict mismatch; prints the CCv geometric-mean speedup).  All produced
certificates are re-validated through the independent checker.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import random
import statistics
import sys
import time
import zlib
from typing import Any, Dict, List, Optional, Tuple

_HERE = pathlib.Path(__file__).resolve().parent
_ROOT = _HERE.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.adts import WindowStream  # noqa: E402
from repro.core import History, Operation  # noqa: E402
from repro.core.operations import BOTTOM, Invocation  # noqa: E402
from repro.criteria import verify_certificate  # noqa: E402
from repro.criteria.causal_search import (  # noqa: E402
    SearchBudgetExceeded,
    search_causal_order,
)
from repro.litmus.generators import recorded_window_history  # noqa: E402

MODES = ("WCC", "CC", "CCV")

# (name, processes, ops/process, update probability, histories).
# ``sat-*`` configs are *recorded* histories (see
# :func:`repro.litmus.generators.recorded_window_history`, shared with
# the equivalence tests): satisfiable by construction and
# carrying observed timestamps, they are the population on which the
# witness-guided enumeration order is measured (the adversarial random
# configs above them are almost always CCv-unsatisfiable, which
# exercises the NO path instead).
FULL_SWEEP: List[Tuple[str, int, int, float, int]] = [
    ("2x4-d50", 2, 4, 0.50, 6),
    ("2x4-d75", 2, 4, 0.75, 6),
    ("2x5-d50", 2, 5, 0.50, 6),
    ("3x4-d50", 3, 4, 0.50, 6),
    ("2x6-d35", 2, 6, 0.35, 6),
    ("2x6-d50", 2, 6, 0.50, 6),
    ("3x5-d40", 3, 5, 0.40, 6),
    ("2x8-d35", 2, 8, 0.35, 4),
    ("3x6-d35", 3, 6, 0.35, 4),
    ("4x5-d30", 4, 5, 0.30, 4),
    ("3x8-d25", 3, 8, 0.25, 3),
    ("4x6-d25", 4, 6, 0.25, 3),
    ("sat-2x6-d50", 2, 6, 0.50, 6),
    ("sat-3x4-d50", 3, 4, 0.50, 6),
    ("sat-3x5-d40", 3, 5, 0.40, 6),
    ("sat-3x6-d40", 3, 6, 0.40, 4),
    ("sat-4x5-d35", 4, 5, 0.35, 4),
]

SMOKE_SWEEP: List[Tuple[str, int, int, float, int]] = [
    ("2x4-d50", 2, 4, 0.50, 3),
    ("3x4-d50", 3, 4, 0.50, 3),
    ("2x6-d35", 2, 6, 0.35, 2),
    ("sat-3x4-d50", 3, 4, 0.50, 3),
    ("sat-2x6-d50", 2, 6, 0.50, 2),
]


def random_history(
    rng: random.Random,
    processes: int,
    ops_per_process: int,
    update_prob: float,
    k: int = 2,
    values: Tuple[int, ...] = (1, 2, 3),
    plausible: float = 0.8,
) -> Tuple[History, WindowStream]:
    """A random W_k history with controllable update density.

    Mirrors :func:`repro.litmus.generators.random_window_history` but
    exposes the write probability, which is the knob that drives both the
    linearisation width and (for CCv) the number of total update orders.
    """
    adt = WindowStream(k)
    writes: List[Invocation] = []
    plan: List[List[Any]] = []
    for _p in range(processes):
        row_plan: List[Any] = []
        for _i in range(ops_per_process):
            if rng.random() < update_prob:
                invocation = Invocation("w", (rng.choice(values),))
                writes.append(invocation)
                row_plan.append(invocation)
            else:
                row_plan.append("r")
        plan.append(row_plan)
    rows: List[List[Operation]] = []
    for row_plan in plan:
        row: List[Operation] = []
        for kind in row_plan:
            if kind == "r":
                if rng.random() < plausible:
                    chosen = [w for w in writes if rng.random() < 0.7]
                    rng.shuffle(chosen)
                    state = adt.initial_state()
                    for invocation in chosen:
                        state = adt.transition(state, invocation)
                    row.append(Operation(Invocation("r"), state))
                else:
                    window = tuple(
                        rng.choice((0,) + values) for _ in range(k)
                    )
                    row.append(Operation(Invocation("r"), window))
            else:
                row.append(Operation(kind, BOTTOM))
        rows.append(row)
    return History.from_processes(rows), adt


def _stat(stats: Any, name: str) -> int:
    """Read a counter tolerantly (older SearchStats lack the new ones)."""
    return int(getattr(stats, name, 0) or 0)


def run_sweep(
    sweep: List[Tuple[str, int, int, float, int]],
    seed: int,
    max_nodes: int,
    verify: bool,
    jobs: Optional[int] = None,
    order_heuristic: Optional[str] = None,
) -> List[Dict[str, Any]]:
    cases: List[Dict[str, Any]] = []
    for name, processes, ops, density, count in sweep:
        # zlib.crc32, not hash(): str hashing is salted per process and
        # would make the sweep non-reproducible across runs
        rng = random.Random(seed * 1_000_003 + zlib.crc32(name.encode()))
        generate = (
            recorded_window_history if name.startswith("sat-") else random_history
        )
        population = [
            generate(rng, processes, ops, density) for _ in range(count)
        ]
        for mode in MODES:
            verdicts: List[Optional[bool]] = []
            certificates = []
            counters = {
                "families_explored": 0,
                "event_checks": 0,
                "lin_nodes": 0,
                "memo_hits": 0,
                "propagate_steps": 0,
                "orders_pruned": 0,
                "conflict_cuts": 0,
                "shards": 0,
                "total_orders_tried": 0,
            }
            budget_exceeded = 0
            # per-shard breakdown of the case's most-sharded history
            # (the interesting one: where the parallel split actually bites)
            shard_detail: List[Dict[str, int]] = []
            # per-history witness positions (CCv, satisfiable histories):
            # the enumeration ranks the order heuristic tries to minimise
            orders_to_witness: List[int] = []
            t0 = time.perf_counter()
            for history, adt in population:
                try:
                    certificate, stats = search_causal_order(
                        history,
                        adt,
                        mode,
                        max_nodes=max_nodes,
                        jobs=jobs,
                        order_heuristic=order_heuristic,
                    )
                except SearchBudgetExceeded:
                    budget_exceeded += 1
                    verdicts.append(None)
                    continue
                verdicts.append(certificate is not None)
                if certificate is not None:
                    certificates.append((history, adt, certificate))
                    witness_at = getattr(stats, "orders_to_witness", None)
                    if witness_at is not None:
                        orders_to_witness.append(witness_at)
                for key in counters:
                    counters[key] += _stat(stats, key)
                per_shard = getattr(stats, "per_shard", None)
                if per_shard and len(per_shard) > len(shard_detail):
                    shard_detail = per_shard
            wall = time.perf_counter() - t0
            if verify:
                for history, adt, certificate in certificates:
                    verify_certificate(history, adt, certificate)
            checks = counters["event_checks"]
            hits = counters["memo_hits"]
            case: Dict[str, Any] = {
                "config": name,
                "events": processes * ops,
                "processes": processes,
                "update_prob": density,
                "mode": mode,
                "histories": count,
                "wall_s": round(wall, 6),
                "verdicts": verdicts,
                "budget_exceeded": budget_exceeded,
                "memo_hit_rate": round(hits / (hits + checks), 4)
                if (hits + checks)
                else 0.0,
                **counters,
            }
            if mode == "CCV":
                case["orders_to_witness"] = orders_to_witness
                case["orders_to_witness_median"] = median(orders_to_witness)
            if mode == "CCV" and shard_detail:
                case["per_shard"] = shard_detail
            cases.append(case)
    return cases


def median(values: List[int]) -> Optional[float]:
    """``statistics.median`` with a ``None`` for an empty population
    (a case without witnesses has no position to report)."""
    return float(statistics.median(values)) if values else None


def geomean(ratios: List[float]) -> float:
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def compare_to_baseline(
    cases: List[Dict[str, Any]], baseline: Dict[str, Any]
) -> Tuple[Dict[str, Any], int]:
    """Verdict equivalence + per-mode speedups versus a stored run.

    A verdict of ``None`` records *budget exhaustion*, not an answer, so
    a new run that decides a previously budget-exceeded history is an
    improvement ("newly decided"), not a mismatch; the regression
    directions — flipping a decided verdict, or failing to decide what
    the baseline decided — still fail the comparison.
    """
    old_by_key = {
        (c["config"], c["mode"]): c for c in baseline.get("cases", [])
    }
    mismatches = 0
    skipped = 0
    newly_decided = 0
    speedups: Dict[str, List[float]] = {mode: [] for mode in MODES}
    for case in cases:
        old = old_by_key.get((case["config"], case["mode"]))
        if old is None:
            continue
        if old.get("histories") != case["histories"]:
            # different sweep shapes (e.g. --smoke vs full): neither the
            # verdict lists nor the wall-times are comparable
            skipped += 1
            continue
        for old_v, new_v in zip(old["verdicts"], case["verdicts"]):
            if old_v == new_v:
                continue
            if old_v is None and new_v is not None:
                newly_decided += 1
                continue
            mismatches += 1
            print(
                f"VERDICT MISMATCH {case['config']}/{case['mode']}: "
                f"{old['verdicts']} -> {case['verdicts']}",
                file=sys.stderr,
            )
            break
        if case["wall_s"] > 0 and old["wall_s"] > 0:
            speedups[case["mode"]].append(old["wall_s"] / case["wall_s"])
    summary = {
        "verdict_mismatches": mismatches,
        "newly_decided": newly_decided,
        "incomparable_cases_skipped": skipped,
        "geomean_speedup": {
            mode: round(geomean(rs), 3) for mode, rs in speedups.items() if rs
        },
    }
    return summary, mismatches


def litmus_verdicts(
    max_nodes: int,
    jobs: Optional[int] = None,
    order_heuristic: Optional[str] = None,
) -> Dict[str, Dict[str, bool]]:
    """Classify the full litmus gallery in all three modes (equivalence
    anchor: these verdicts must never change across perf PRs)."""
    from repro.litmus import all_litmus
    from repro.litmus.extra import extra_litmus

    table: Dict[str, Dict[str, bool]] = {}
    for litmus in list(all_litmus()) + list(extra_litmus()):
        row = {}
        for mode in MODES:
            certificate, _ = search_causal_order(
                litmus.history, litmus.adt, mode, max_nodes=max_nodes,
                jobs=jobs, order_heuristic=order_heuristic,
            )
            if certificate is not None:
                verify_certificate(litmus.history, litmus.adt, certificate)
            row[mode] = certificate is not None
        table[litmus.key] = row
    return table


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI sweep")
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--max-nodes", type=int, default=500_000)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the sharded CCv search (0 = host-sized; "
        "default/1 = in-process; verdicts and counters are identical at "
        "any count, so --baseline comparisons work in both modes)",
    )
    parser.add_argument(
        "--order-heuristic",
        choices=("timestamps", "lex"),
        default="timestamps",
        help="CCv total-order enumeration order: witness-guided "
        "'timestamps' (default) or the 'lex' escape hatch; verdicts are "
        "identical, witness positions (orders_to_witness) differ",
    )
    parser.add_argument(
        "--out", default=str(_ROOT / "BENCH_search.json"), help="JSON output"
    )
    parser.add_argument(
        "--baseline", default=None, help="earlier BENCH_search.json to compare"
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="fail (exit 2) when the sweep exceeds this wall-time",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip certificate re-validation (timing purity)",
    )
    args = parser.parse_args(argv)

    from repro.criteria.causal_parallel import resolve_jobs

    args.jobs = resolve_jobs(args.jobs)
    sweep = SMOKE_SWEEP if args.smoke else FULL_SWEEP
    started = time.perf_counter()
    cases = run_sweep(
        sweep, args.seed, args.max_nodes, not args.no_verify, jobs=args.jobs,
        order_heuristic=args.order_heuristic,
    )
    litmus = litmus_verdicts(
        args.max_nodes, jobs=args.jobs, order_heuristic=args.order_heuristic
    )
    elapsed = time.perf_counter() - started

    per_mode_wall = {
        mode: round(sum(c["wall_s"] for c in cases if c["mode"] == mode), 4)
        for mode in MODES
    }
    all_witness_positions = [
        v
        for c in cases
        if c["mode"] == "CCV"
        for v in c.get("orders_to_witness", [])
    ]
    report: Dict[str, Any] = {
        "schema": 3,
        "smoke": args.smoke,
        "seed": args.seed,
        "jobs": args.jobs or 1,
        "order_heuristic": args.order_heuristic,
        "timestamp": time.time(),
        "cases": cases,
        "litmus": litmus,
        "summary": {
            "wall_s": round(elapsed, 4),
            "per_mode_wall_s": per_mode_wall,
            "ccv_witnesses": len(all_witness_positions),
            "ccv_orders_to_witness_median": median(all_witness_positions),
        },
    }

    exit_code = 0
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        comparison, mismatches = compare_to_baseline(cases, baseline)
        if baseline.get("litmus") and baseline["litmus"] != litmus:
            comparison["litmus_changed"] = True
            mismatches += 1
            print("LITMUS VERDICTS CHANGED vs baseline", file=sys.stderr)
        report["baseline_comparison"] = comparison
        if mismatches:
            exit_code = 1

    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    for mode in MODES:
        print(f"{mode:4s} wall {per_mode_wall[mode]:8.3f}s")
    print(
        f"CCv witnesses: {len(all_witness_positions)}, median orders to "
        f"witness {median(all_witness_positions)} "
        f"({args.order_heuristic} heuristic)"
    )
    print(f"total {elapsed:.3f}s -> {out_path}")
    if args.baseline and report.get("baseline_comparison"):
        print("vs baseline:", json.dumps(report["baseline_comparison"]))
    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(
            f"REGRESSION: sweep took {elapsed:.1f}s > {args.max_seconds:.1f}s",
            file=sys.stderr,
        )
        exit_code = 2
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
