"""E5 — the Fig. 5 algorithm: convergence, model-check, and the ablation
against the generic log-replay CCv construction.

The model-check/convergence experiment is specified declaratively as a
:class:`ScenarioSpec` (quiescence reads come from the spec, and the same
condition is re-checked under a mid-run partition).  Also regenerates the
transcription-note artifact: the pseudocode as printed
(``paper_literal=True``) fails the sequential window semantics, the
corrected insertion does not (DESIGN.md §7).
"""

import random

import pytest

from repro.adts import WindowStreamArray
from repro.algorithms import CCvWindowArray, GenericCCv
from repro.analysis.harness import run_workload, window_script
from repro.core.operations import Invocation
from repro.criteria import check, check_update_consistency
from repro.runtime import DelayModel, Network, Simulator
from repro.scenarios import (
    FaultEvent,
    Scenario,
    ScenarioSpec,
    WorkloadSpec,
)

from _util import emit

#: the declarative model-check condition, with stable quiescence reads
FIG5_SCENARIO = ScenarioSpec(
    name="fig5-model-check",
    n=3,
    streams=2,
    k=2,
    workload=WorkloadSpec(ops_per_process=4),
    quiescence_reads=True,
)


def _scripts(seed, n, length, streams):
    return [
        window_script(random.Random(seed + pid), length, streams)
        for pid in range(n)
    ]


@pytest.mark.parametrize("n", [2, 4, 8])
def test_fig5_throughput(benchmark, n):
    scripts = _scripts(23, n, 30, 2)

    def run():
        return run_workload(
            CCvWindowArray, n, scripts, seed=n, streams=2, k=2, flood=False
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.ops == 30 * n
    assert result.mean_latency == 0.0


def test_fig5_model_checked_and_convergent(benchmark):
    scenario = Scenario(FIG5_SCENARIO)

    def run_and_check():
        result = scenario.run(CCvWindowArray, seed=4, streams=2, k=2)
        adt = scenario.adt()
        ccv = check(result.history, adt, "CCV")
        uc = check_update_consistency(result.history, adt, result.stable)
        return ccv, uc

    ccv, uc = benchmark.pedantic(run_and_check, rounds=2, iterations=1)
    assert ccv.ok and uc.ok


def test_fig5_convergent_across_partition(benchmark):
    """The same condition with a partition thrown mid-run: CCv still
    holds and the post-heal stable reads agree on every replica."""
    from dataclasses import replace

    spec = replace(
        FIG5_SCENARIO,
        name="fig5-partition",
        faults=(FaultEvent.partition(1.0, (0, 1), (2,)), FaultEvent.heal(6.0)),
    )
    scenario = Scenario(spec)

    def run_and_check():
        result = scenario.run(CCvWindowArray, seed=7, streams=2, k=2)
        adt = scenario.adt()
        ccv = check(result.history, adt, "CCV")
        stable_reads = {
            (result.history.event(e).invocation.args, result.history.event(e).output)
            for e in result.stable
        }
        return ccv, stable_reads

    ccv, stable_reads = benchmark.pedantic(run_and_check, rounds=2, iterations=1)
    assert ccv.ok
    # one read per stream per process, all agreeing: 2 distinct pairs
    assert len(stable_reads) == 2


def test_fig5_ablation_specialised_vs_generic(benchmark):
    """Fig. 5's window insertion is O(k) per delivery; the generic CCv
    construction replays a growing log.  Compare host cost on identical
    workloads (the ablation DESIGN.md calls out)."""
    import time

    n, length = 4, 60
    adt = WindowStreamArray(2, 2)
    scripts = _scripts(31, n, length, 2)
    timings = {}
    for name, cls, kwargs in (
        ("Fig.5 window insertion", CCvWindowArray, {"streams": 2, "k": 2}),
        ("generic log replay", GenericCCv, {"adt": adt}),
    ):
        t0 = time.perf_counter()
        result = run_workload(cls, n, scripts, seed=6, flood=False, **kwargs)
        timings[name] = (time.perf_counter() - t0, result.ops)
    lines = ["host cost, identical workload (4 procs x 60 ops):"]
    for name, (seconds, ops) in timings.items():
        lines.append(f"  {name:26s}: {seconds*1e6/ops:8.1f} us/op")
    emit("fig5_ablation_insertion", "\n".join(lines))

    def run_specialised():
        return run_workload(
            CCvWindowArray, n, scripts, seed=6, streams=2, k=2, flood=False
        )

    benchmark.pedantic(run_specialised, rounds=3, iterations=1)


def test_fig5_paper_literal_regression(benchmark):
    """The printed pseudocode drops values (off-by-one); corrected doesn't."""
    lines = ["sequential write sequence 1,2,3 on one process, k=2:"]
    for literal in (False, True):
        sim = Simulator(seed=0)
        net = Network(sim, 1)
        obj = CCvWindowArray(sim, net, None, streams=1, k=2, paper_literal=literal)
        for v in (1, 2, 3):
            obj.invoke(0, Invocation("w", (0, v)))
        sim.run()
        tag = "as printed " if literal else "corrected  "
        lines.append(f"  {tag}: window = {obj.window(0, 0)}  "
                     f"(sequential spec says (2, 3))")
    emit("fig5_transcription_note", "\n".join(lines))

    def run_corrected():
        sim = Simulator(seed=0)
        net = Network(sim, 1)
        obj = CCvWindowArray(sim, net, None, streams=1, k=2)
        for v in (1, 2, 3):
            obj.invoke(0, Invocation("w", (0, v)))
        sim.run()
        return obj.window(0, 0)

    assert benchmark.pedantic(run_corrected, rounds=3, iterations=1) == (2, 3)
