"""A/B throughput benchmark for the live service plane hot path.

PR 9 shipped the live plane at roughly 440 aggregate op/s on its
reference scenario (3 nodes behind fault proxies, 5% loss + 5% dup, a
crash and supervised rejoin mid-load) — open-loop, JSON wire codec, one
write+drain per frame, lock-step clients, monitors fed synchronously.
PR 10 rebuilt that path: binary codec, frame coalescing, client
pipelining, ring-buffered observability tap.  This benchmark measures
the rebuild two honest ways::

    PYTHONPATH=src python benchmarks/bench_service.py                  # full sweep
    PYTHONPATH=src python benchmarks/bench_service.py --smoke          # CI guard
    PYTHONPATH=src python benchmarks/bench_service.py \
        --baseline benchmarks/results/BENCH_service_seed.json          # compare

**Saturation A/B (like-for-like)** — closed-loop saturation of the
*same* cluster shape under the PR 9 plane (``json`` codec, coalescing
off, sync tap, lock-step ``window=1`` clients) and the PR 10 plane
(``binary``, coalescing, ring tap, ``window=32`` over 2 pipelined
connections per node), at n=3 and n=5.  Both planes run the identical
algorithm on one shared event loop, so this ratio isolates what the
wire/tap rebuild itself buys once the client stops being the bottleneck
(expect ~2.5–3×: the remaining wall is the replication algorithm, which
both planes pay equally).

**Reference-scenario aggregate** — the PR 9 chaos scenario end to end,
each plane driven the way its PR drove it: the baseline with PR 9's
open-loop generator settings (rate 25/s × 4 sessions/node — the ~440
op/s configuration the committed PR 9 numbers report), the optimized
plane saturated through pipelined clients.  Both runs must converge
after heal + repair, finish with zero monitor violations, and their
captured histories must classify **conclusively CCv-consistent** by the
streaming monitor — throughput that breaks the safety story does not
count.  The headline gate (≥10× full, ≥3× smoke) is this ratio: it is
the user-visible "ops served per second of chaos scenario" gain, and it
is deliberately *not* like-for-like (the baseline generator is part of
what PR 10 replaced).

Cells are interleaved (baseline, optimized, baseline, …) so clock drift
and thermal noise land on both planes — the PR 5 measurement protocol.
``--baseline`` compares a committed report: verdict fields (convergence,
monitor cleanliness, CCv classification, ring spills) must match
exactly (exit 1 on drift); throughput is compared informationally and
gated only by ``--min-ratio`` (exit 2 below it).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import platform
import sys
import time
from typing import Any, Dict, List, Optional

_HERE = pathlib.Path(__file__).resolve().parent
_ROOT = _HERE.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.cli import load_history  # noqa: E402
from repro.criteria.streaming_monitor import replay_history  # noqa: E402
from repro.scenarios.spec import FaultEvent, WorkloadSpec  # noqa: E402
from repro.service import wire  # noqa: E402
from repro.service.cluster import LiveCluster  # noqa: E402
from repro.service.load import (  # noqa: E402
    capture_history,
    converged_windows,
    run_load,
)
from repro.service.proxy import apply_event  # noqa: E402

try:
    from _util import emit
except ImportError:  # pragma: no cover - run as a module
    from benchmarks._util import emit

BASE_PORT = 7740
#: ports consumed per cell (3 per node, up to 5 nodes, plus slack)
PORT_STRIDE = 30

#: the two planes under test — everything else is held identical
PLANES: Dict[str, Dict[str, Any]] = {
    "baseline": {  # the PR 9 hot path, bit for bit
        "codec": wire.CODEC_JSON,
        "coalesce": False,
        "tap": "sync",
        "window": 1,
        "connections": 1,
    },
    "optimized": {  # the PR 10 hot path
        "codec": wire.CODEC_BINARY,
        "coalesce": True,
        "tap": "ring",
        "window": 32,
        "connections": 2,
    },
}

STREAMS = 2
K = 2
SESSIONS = 32  # closed-loop sessions per node at saturation


# ----------------------------------------------------------------------
# Cells
# ----------------------------------------------------------------------
async def _statuses(cluster: LiveCluster) -> Dict[int, Dict[str, Any]]:
    out = {}
    for pid in range(cluster.n):
        reply = await cluster.node_control(pid, "status")
        out[pid] = reply["status"]
    return out


def _health(statuses: Dict[int, Dict[str, Any]]) -> Dict[str, Any]:
    spills = sum(
        doc.get("tap", {}).get("spills", 0) for doc in statuses.values()
    )
    wire_stats = {
        pid: doc["wire"] for pid, doc in statuses.items()
    }
    return {
        "monitors_ok": all(d["monitor"]["ok"] for d in statuses.values()),
        "violations": sum(d["monitor"]["total"] for d in statuses.values()),
        "ring_spills": spills,
        "wire": wire_stats,
    }


async def _await_convergence(addrs, attempts: int = 40) -> bool:
    for _ in range(attempts):
        await asyncio.sleep(0.25)
        if await converged_windows(addrs, STREAMS):
            return True
    return False


def saturation_cell(
    plane: str, n: int, base_port: int, duration: float, seed: int
) -> Dict[str, Any]:
    """Closed-loop saturation, no fault proxies: the pure hot path."""
    cfg = PLANES[plane]

    async def body():
        cluster = LiveCluster(
            n,
            base_port=base_port,
            streams=STREAMS,
            k=K,
            seed=seed,
            proxied=False,
            codec=cfg["codec"],
            coalesce=cfg["coalesce"],
            tap=cfg["tap"],
        )
        await cluster.start()
        try:
            await asyncio.sleep(0.3)
            addrs = {pid: cluster.client_addr(pid) for pid in range(n)}
            spec = WorkloadSpec(
                kind="closed", write_ratio=0.6, hot_key_weight=0.3
            )
            report = await run_load(
                addrs,
                spec,
                streams=STREAMS,
                duration=duration,
                sessions_per_node=SESSIONS,
                seed=seed,
                window=cfg["window"],
                connections=cfg["connections"],
                codec=cfg["codec"],
                closed=True,
            )
            converged = await _await_convergence(addrs)
            statuses = await _statuses(cluster)
            return {
                "kind": "saturation",
                "plane": plane,
                "n": n,
                "duration": duration,
                "completed": report.completed,
                "errors": report.errors,
                "ops_per_sec": round(report.completed / duration, 1),
                "latency": report.latency_percentiles(),
                "converged": converged,
                **_health(statuses),
            }
        finally:
            await cluster.close()

    return asyncio.run(body())


def reference_cell(
    plane: str, base_port: int, duration: float, seed: int
) -> Dict[str, Any]:
    """The PR 9 reference chaos scenario end to end, driven the way the
    plane's own PR drove it (open-loop generator for the baseline,
    pipelined saturation for the optimized plane)."""
    cfg = PLANES[plane]
    saturated = plane == "optimized"

    async def body():
        cluster = LiveCluster(
            3,
            base_port=base_port,
            streams=STREAMS,
            k=K,
            seed=seed,
            proxied=True,
            codec=cfg["codec"],
            coalesce=cfg["coalesce"],
            tap=cfg["tap"],
        )
        await cluster.start()
        try:
            await asyncio.sleep(0.4)
            addrs = {pid: cluster.client_addr(pid) for pid in range(3)}
            if saturated:
                spec = WorkloadSpec(
                    kind="closed", write_ratio=0.6, hot_key_weight=0.3
                )
            else:
                spec = WorkloadSpec(
                    kind="open",
                    rate=25.0,
                    write_ratio=0.6,
                    hot_key_weight=0.3,
                )

            async def chaos():
                ctl = cluster.node_control
                px = cluster.proxies
                await apply_event(FaultEvent.loss(0.0, 0.05), px, ctl)
                await apply_event(FaultEvent.duplicate(0.0, 0.05), px, ctl)
                await asyncio.sleep(duration * 0.28)
                await ctl(2, "crash")
                await asyncio.sleep(duration * 0.36)
                await ctl(2, "recover")

            load_task = asyncio.ensure_future(
                run_load(
                    addrs,
                    spec,
                    streams=STREAMS,
                    duration=duration,
                    sessions_per_node=SESSIONS if saturated else 4,
                    seed=seed,
                    window=cfg["window"],
                    connections=cfg["connections"],
                    codec=cfg["codec"],
                    closed=saturated,
                )
            )
            chaos_task = asyncio.ensure_future(chaos())
            report = await load_task
            await chaos_task

            # heal the wire, one supervised-resync repair sweep
            for proxy in cluster.proxies.values():
                proxy.set_loss_rate(0.0)
                proxy.set_duplicate_rate(0.0)
            await apply_event(
                FaultEvent.repair(0.0), cluster.proxies, cluster.node_control
            )
            converged = await _await_convergence(addrs, attempts=60)
            statuses = await _statuses(cluster)
            doc = await capture_history(
                addrs, STREAMS, K, criteria=("CCV",)
            )
            history, adt, _criteria = load_history(doc)
            verdict = replay_history(history, adt, criteria=("CCV",))["CCV"]
            return {
                "kind": "reference",
                "plane": plane,
                "n": 3,
                "duration": duration,
                "completed": report.completed,
                "errors": report.errors,
                "rejected": report.rejected,
                "ops_per_sec": round(report.completed / duration, 1),
                "latency": report.latency_percentiles(),
                "converged": converged,
                "ccv": {
                    "conclusive": verdict.conclusive(),
                    "ok": verdict.ok,
                },
                "captured_ops": sum(len(row) for row in doc["processes"]),
                **_health(statuses),
            }
        finally:
            await cluster.close()

    return asyncio.run(body())


def cell_clean(cell: Dict[str, Any]) -> List[str]:
    """Blemishes that void a cell's measurement."""
    problems = []
    if cell["errors"]:
        problems.append(f"{cell['errors']} client errors")
    if not cell["converged"]:
        problems.append("did not converge")
    if not cell["monitors_ok"]:
        problems.append(f"{cell['violations']} monitor violations")
    if cell.get("ring_spills"):
        problems.append(f"{cell['ring_spills']} ring spills")
    ccv = cell.get("ccv")
    if ccv is not None and not (ccv["conclusive"] and ccv["ok"]):
        problems.append(f"CCv verdict {ccv}")
    return problems


# ----------------------------------------------------------------------
# Sweep + report
# ----------------------------------------------------------------------
def geometric_mean(values: List[float]) -> float:
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values)) if values else 0.0


def run_sweep(args) -> Dict[str, Any]:
    sizes = (3,) if args.smoke else (3, 5)
    reps = 1 if args.smoke else 2
    sat_duration = 1.2 if args.smoke else 3.0
    ref_duration = 2.5

    next_port = [args.base_port]

    def port_block() -> int:
        block = next_port[0]
        next_port[0] += PORT_STRIDE
        return block

    cells: List[Dict[str, Any]] = []
    # interleaved: baseline and optimized alternate within every rep
    for n in sizes:
        for rep in range(reps):
            for plane in ("baseline", "optimized"):
                cell = saturation_cell(
                    plane, n, port_block(), sat_duration, args.seed + rep
                )
                cell["rep"] = rep
                cells.append(cell)
                print(
                    f"saturation n={n} rep={rep} {plane:>9}: "
                    f"{cell['ops_per_sec']:>8.0f} op/s "
                    f"p50={cell['latency']['p50_ms']}ms "
                    f"p99={cell['latency']['p99_ms']}ms",
                    file=sys.stderr,
                )

    reference: Dict[str, Dict[str, Any]] = {}
    for plane in ("baseline", "optimized"):
        cell = reference_cell(plane, port_block(), ref_duration, args.seed)
        reference[plane] = cell
        cells.append(cell)
        print(
            f"reference {plane:>9}: {cell['ops_per_sec']:>8.0f} op/s "
            f"converged={cell['converged']} ccv={cell['ccv']} "
            f"spills={cell.get('ring_spills', 0)}",
            file=sys.stderr,
        )

    # aggregate ratios
    sat_ratios = {}
    for n in sizes:
        base = [
            c["ops_per_sec"]
            for c in cells
            if c["kind"] == "saturation"
            and c["n"] == n
            and c["plane"] == "baseline"
        ]
        opt = [
            c["ops_per_sec"]
            for c in cells
            if c["kind"] == "saturation"
            and c["n"] == n
            and c["plane"] == "optimized"
        ]
        sat_ratios[str(n)] = round(
            geometric_mean(opt) / geometric_mean(base), 2
        )
    ref_ratio = round(
        reference["optimized"]["ops_per_sec"]
        / reference["baseline"]["ops_per_sec"],
        2,
    )
    return {
        "benchmark": "live-service-plane",
        "smoke": args.smoke,
        "seed": args.seed,
        "python": platform.python_version(),
        "shape": {
            "streams": STREAMS,
            "k": K,
            "sessions_per_node": SESSIONS,
            "planes": {
                name: {k: v for k, v in cfg.items()}
                for name, cfg in PLANES.items()
            },
        },
        "cells": cells,
        "ratios": {
            "saturation": sat_ratios,
            "reference_aggregate": ref_ratio,
        },
    }


def compare_to_baseline(
    report: Dict[str, Any], baseline: Dict[str, Any]
) -> List[str]:
    """Verdict fields must match the committed report exactly; numbers
    are informational."""
    drift: List[str] = []

    def verdict_key(cell: Dict[str, Any]):
        return (
            cell["kind"],
            cell["plane"],
            cell["n"],
            cell.get("rep", 0),
        )

    committed = {verdict_key(c): c for c in baseline.get("cells", [])}
    for cell in report["cells"]:
        ref = committed.get(verdict_key(cell))
        if ref is None:
            continue
        for field in ("converged", "monitors_ok"):
            if cell[field] != ref[field]:
                drift.append(
                    f"{verdict_key(cell)}: {field} {cell[field]} "
                    f"!= committed {ref[field]}"
                )
        if cell.get("ccv") != ref.get("ccv"):
            drift.append(
                f"{verdict_key(cell)}: ccv {cell.get('ccv')} "
                f"!= committed {ref.get('ccv')}"
            )
        if bool(cell.get("ring_spills")) != bool(ref.get("ring_spills")):
            drift.append(
                f"{verdict_key(cell)}: ring_spills {cell.get('ring_spills')}"
                f" vs committed {ref.get('ring_spills')}"
            )
    return drift


def render_table(report: Dict[str, Any]) -> str:
    lines = [
        "live service plane: aggregate op/s, client-observed latency",
        "",
        f"{'cell':<26}{'plane':>10}{'op/s':>9}{'p50ms':>8}"
        f"{'p95ms':>8}{'p99ms':>8}",
    ]
    for cell in report["cells"]:
        label = f"{cell['kind']} n={cell['n']} rep={cell.get('rep', 0)}"
        lat = cell["latency"]
        lines.append(
            f"{label:<26}{cell['plane']:>10}{cell['ops_per_sec']:>9.0f}"
            f"{lat['p50_ms']:>8.1f}{lat['p95_ms']:>8.1f}"
            f"{lat['p99_ms']:>8.1f}"
        )
    r = report["ratios"]
    lines.append("")
    lines.append(
        f"saturation ratio (like-for-like): "
        + ", ".join(f"n={n}: {v}x" for n, v in r["saturation"].items())
    )
    lines.append(
        f"reference-scenario aggregate ratio: {r['reference_aggregate']}x"
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="n=3 only, one rep, short cells (CI guard)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--base-port", type=int, default=BASE_PORT)
    parser.add_argument(
        "--min-ratio", type=float, default=None,
        help="reference-aggregate floor (exit 2 below it); "
        "default 10.0 full / 3.0 smoke",
    )
    parser.add_argument(
        "--max-seconds", type=float, default=None,
        help="fail (exit 2) when the sweep exceeds this wall-time",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="committed BENCH_service*.json to compare "
        "(exit 1 on verdict drift)",
    )
    parser.add_argument("--out", default="BENCH_service.json")
    args = parser.parse_args(argv)
    min_ratio = args.min_ratio
    if min_ratio is None:
        min_ratio = 3.0 if args.smoke else 10.0

    t_start = time.perf_counter()
    report = run_sweep(args)
    report["totals"] = {"wall": round(time.perf_counter() - t_start, 2)}

    exit_code = 0
    blemished = False
    for cell in report["cells"]:
        problems = cell_clean(cell)
        if problems:
            blemished = True
            print(
                f"BLEMISHED CELL {cell['kind']}/{cell['plane']}/n="
                f"{cell['n']}: {'; '.join(problems)}",
                file=sys.stderr,
            )
    if blemished:
        exit_code = 2

    ratio = report["ratios"]["reference_aggregate"]
    if ratio < min_ratio:
        print(
            f"REFERENCE RATIO {ratio}x BELOW FLOOR {min_ratio}x",
            file=sys.stderr,
        )
        exit_code = 2
    if args.max_seconds and report["totals"]["wall"] > args.max_seconds:
        print(
            f"WALL {report['totals']['wall']}s EXCEEDS CAP "
            f"{args.max_seconds}s",
            file=sys.stderr,
        )
        exit_code = 2

    if args.baseline:
        with open(args.baseline) as fh:
            committed = json.load(fh)
        drift = compare_to_baseline(report, committed)
        report["baseline_drift"] = drift
        for line in drift:
            print("VERDICT DRIFT:", line, file=sys.stderr)
        if drift:
            exit_code = 1

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    emit("service_throughput", render_table(report))
    print(
        f"total wall {report['totals']['wall']}s, reference ratio "
        f"{ratio}x (floor {min_ratio}x), report -> {args.out}",
        file=sys.stderr,
    )
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
