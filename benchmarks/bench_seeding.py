"""Ablation — semantic seeding of the causal-order search.

Measures the effect of seeding mandatory explanation edges (unique
writers of read values) into the initial causal-past family, on the full
litmus suite across WCC/CC/CCv.  Answers are cross-validated invariant in
``tests/test_seeding.py``; here we quantify the work saved.
"""

import pytest

from repro.criteria.causal_search import CausalSearch
from repro.litmus import all_litmus
from repro.litmus.extra import extra_litmus

from _util import emit

MODES = ("WCC", "CC", "CCV")


def _run_suite(seed_semantic: bool):
    families = 0
    event_checks = 0
    for litmus in list(all_litmus()) + list(extra_litmus()):
        for mode in MODES:
            search = CausalSearch(
                litmus.history, litmus.adt, mode, seed_semantic=seed_semantic
            )
            search.run()
            families += search.stats.families_explored
            event_checks += search.stats.event_checks
    return families, event_checks


@pytest.mark.parametrize("seeded", [False, True], ids=["unseeded", "seeded"])
def test_seeding_ablation(benchmark, seeded):
    families, event_checks = benchmark(lambda: _run_suite(seeded))
    if seeded:
        unseeded_families, unseeded_checks = _run_suite(False)
        lines = [
            "causal-order search work on the full litmus suites (18 histories x 3 modes):",
            f"  {'':10s} {'families':>10s} {'event checks':>14s}",
            f"  {'unseeded':10s} {unseeded_families:>10d} {unseeded_checks:>14d}",
            f"  {'seeded':10s} {families:>10d} {event_checks:>14d}",
            f"\nreduction: {unseeded_families / max(1, families):.1f}x fewer families explored",
        ]
        emit("seeding_ablation", "\n".join(lines))
        assert families < unseeded_families
