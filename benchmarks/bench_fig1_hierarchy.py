"""E1 — regenerate the Fig. 1 hierarchy map, empirically.

Classifies litmus + random histories against the five ordered criteria,
asserts zero inclusion violations (the arrows of Fig. 1) and reports a
strictness witness for every edge (each criterion is genuinely distinct).
The benchmark measures population-classification throughput.
"""

from repro.analysis import classify_population, format_report

from _util import emit


def test_fig1_hierarchy(benchmark):
    report = benchmark.pedantic(
        lambda: classify_population(seed=2026, random_histories=45),
        rounds=1,
        iterations=1,
    )
    emit("fig1_hierarchy", format_report(report))
    assert report.inclusion_violations == []
    assert report.missing_witnesses() == []


def test_fig1_random_only_inclusions(benchmark):
    """Inclusion audit on purely random histories (no litmus seeding)."""
    report = benchmark.pedantic(
        lambda: classify_population(
            seed=77, random_histories=30, include_litmus=False
        ),
        rounds=1,
        iterations=1,
    )
    assert report.inclusion_violations == []
