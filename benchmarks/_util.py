"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts (DESIGN.md §4)
and *emits* the corresponding table/figure as text: printed to stderr (so
pytest capture does not swallow it) and appended to
``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print an artifact and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner, file=sys.stderr)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
