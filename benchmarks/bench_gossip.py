"""Extension ablation — op-based (Fig. 5) vs state-based (gossip) CCv.

The paper cites CRDTs [22] as the other road to convergence.  This bench
quantifies the trade-off on lossy links: the op-based algorithm without
flooding loses writes permanently, flooding pays O(n^2) messages, and the
state-based gossip converges through loss at the cost of shipping whole
states.
"""

import pytest

from repro.algorithms import CCvWindowArray, GossipCCvWindowArray
from repro.core.operations import Invocation
from repro.runtime import DelayModel, Network, Simulator

from _util import emit

LOSS_RATES = (0.0, 0.2, 0.4)


def _run_gossip(loss: float, seed: int, max_rounds: int = 400):
    sim = Simulator(seed=seed)
    net = Network(sim, 4, delay=DelayModel.uniform(0.2, 1.0), loss_rate=loss)
    obj = GossipCCvWindowArray(sim, net, None, streams=1, k=2)
    for pid in range(4):
        obj.invoke(pid, Invocation("w", (0, 10 + pid)))
    obj.start_gossip(rounds=max_rounds)
    # run in slices so we can detect convergence round
    while not obj.converged() and sim.pending:
        sim.run(until=sim.now + 1.0)
    obj.stop_gossip()
    sim.run()
    return obj.converged(), obj.rounds, net.stats


def _run_opbased(loss: float, seed: int, flood: bool):
    sim = Simulator(seed=seed)
    net = Network(sim, 4, delay=DelayModel.uniform(0.2, 1.0), loss_rate=loss)
    obj = CCvWindowArray(sim, net, None, streams=1, k=2, flood=flood)
    for pid in range(4):
        obj.invoke(pid, Invocation("w", (0, 10 + pid)))
    sim.run()
    converged = len({obj.window(pid, 0) for pid in range(4)}) == 1
    return converged, net.stats


def test_gossip_vs_opbased_under_loss(benchmark):
    def experiment():
        rows = []
        for loss in LOSS_RATES:
            gossip_ok = sum(_run_gossip(loss, s)[0] for s in range(5))
            direct_ok = sum(_run_opbased(loss, s, flood=False)[0] for s in range(5))
            flood_ok = sum(_run_opbased(loss, s, flood=True)[0] for s in range(5))
            rows.append((loss, gossip_ok, direct_ok, flood_ok))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    lines = ["runs converged out of 5, per message-loss rate:",
             f"{'loss':>6s} {'gossip':>8s} {'op-based':>9s} {'op+flood':>9s}"]
    for loss, gossip_ok, direct_ok, flood_ok in rows:
        lines.append(f"{loss:6.1f} {gossip_ok:8d} {direct_ok:9d} {flood_ok:9d}")
    lines.append("\ngossip (state-based, CRDT-style [22]) rides out loss by")
    lines.append("retrying semilattice merges; op-based needs reliable links")
    lines.append("(the paper's model) or flooding redundancy.")
    emit("gossip_vs_opbased_loss", "\n".join(lines))
    assert all(r[1] == 5 for r in rows)       # gossip always converges
    assert any(r[2] < 5 for r in rows[1:])    # plain op-based breaks under loss


@pytest.mark.parametrize("loss", LOSS_RATES)
def test_gossip_rounds_to_convergence(benchmark, loss):
    def run():
        return _run_gossip(loss, seed=17)

    converged, rounds, stats = benchmark.pedantic(run, rounds=2, iterations=1)
    assert converged
